//! `swscc` — command-line SCC toolkit.
//!
//! ```text
//! swscc scc <input> [--algo NAME | --pipeline STAGES] [--threads N] [--scale S]
//!           [--histogram] [--dobfs]
//!           [--live-compaction auto|always|never] [--timeout SECS]
//!           [--on-panic fallback|fail] [--inject-fault SITE[:NTH]]
//! swscc stats <input> [--scale S]
//! swscc gen <dataset> --out FILE [--scale S] [--seed N]
//! swscc condense <input> --out FILE [--scale S]
//! swscc help
//! ```
//!
//! `<input>` is either a path to a SNAP-format edge list (`src dst` lines,
//! `#`/`%` comments) or `dataset:<name>` for one of the nine built-in
//! Table 1 analogs (`dataset:livej`, `dataset:ca-road`, …).
//!
//! Exit codes: `0` success, `1` runtime failure (unreadable input, I/O),
//! `2` configuration error (bad flag, unknown algorithm/dataset),
//! `70` internal failure (worker panic not absorbed, non-convergence),
//! `124` deadline exceeded (`--timeout`).

use std::process::ExitCode;
use std::time::Duration;
use swscc::graph::datasets::Dataset;
use swscc::graph::stats::{average_degree, estimate_diameter};
use swscc::graph::{io, CompressedCsr, CsrGraph, GraphView};
use swscc::sync::fault::{self, FaultKind, FaultPlan};
use swscc::{
    detect_scc, run_checked, run_pipeline, Algorithm, CompactionPolicy, PanicPolicy, Pipeline,
    RecoveryEvent, RunGuard, SccConfig, SccError,
};

/// Exit code for configuration/usage errors (bad flag, unknown name).
const EXIT_CONFIG: u8 = 2;
/// Exit code for internal failures (unabsorbed panic, non-convergence) —
/// EX_SOFTWARE from sysexits.
const EXIT_INTERNAL: u8 = 70;
/// Exit code when `--timeout` expires, matching timeout(1).
const EXIT_TIMEOUT: u8 = 124;
/// Exit code for a load-shed run (server said try again later) —
/// EX_TEMPFAIL from sysexits.
const EXIT_TEMPFAIL: u8 = 75;

/// A CLI failure: message plus process exit code.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn config(message: impl Into<String>) -> CliError {
        CliError {
            code: EXIT_CONFIG,
            message: message.into(),
        }
    }

    fn runtime(message: impl Into<String>) -> CliError {
        CliError {
            code: 1,
            message: message.into(),
        }
    }
}

impl From<SccError> for CliError {
    fn from(e: SccError) -> CliError {
        let code = match e {
            SccError::DeadlineExceeded => EXIT_TIMEOUT,
            SccError::Overloaded { .. } => EXIT_TEMPFAIL,
            SccError::Cancelled
            | SccError::NonConvergence { .. }
            | SccError::WorkerPanic { .. } => EXIT_INTERNAL,
        };
        CliError {
            code,
            message: e.to_string(),
        }
    }
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut raw = raw.peekable();
        while let Some(a) = raw.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if raw.peek().is_some_and(|v| !v.starts_with("--")) {
                    raw.next()
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn flag_value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn flag_present(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn parsed_flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag_value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::config(format!("invalid value for --{name}: {v:?}"))),
        }
    }
}

fn load_input(spec: &str, scale: f64, seed: u64) -> Result<CsrGraph, CliError> {
    if let Some(name) = spec.strip_prefix("dataset:") {
        let d = Dataset::from_name(name).ok_or_else(|| {
            CliError::config(format!(
                "unknown dataset {name:?}; available: {}",
                Dataset::all().map(|d| d.name()).join(", ")
            ))
        })?;
        Ok(d.generate(scale, seed))
    } else if spec.ends_with(".bin") {
        io::load_binary(spec).map_err(|e| CliError::runtime(format!("cannot load {spec}: {e}")))
    } else {
        io::load_edge_list(spec).map_err(|e| CliError::runtime(format!("cannot load {spec}: {e}")))
    }
}

/// Parses `--inject-fault SITE[:NTH]` into an armed plan (a test aid for
/// exercising the recovery paths end-to-end; the armed fault panics at the
/// NTH hit of SITE, default 0).
fn parse_fault(spec: &str) -> Result<FaultPlan, CliError> {
    let (site, nth) = match spec.rsplit_once(':') {
        Some((site, nth)) => {
            let nth: u64 = nth
                .parse()
                .map_err(|_| CliError::config(format!("invalid --inject-fault index: {spec:?}")))?;
            (site, nth)
        }
        None => (spec, 0),
    };
    if site.is_empty() {
        return Err(CliError::config("empty --inject-fault site"));
    }
    // Fault sites are &'static str; a one-shot CLI arming leaks one small
    // allocation for the process lifetime.
    let site: &'static str = Box::leak(site.to_string().into_boxed_str());
    Ok(FaultPlan {
        site: Some(site),
        nth,
        kind: FaultKind::Panic,
        repeat: false,
    })
}

fn cmd_scc(args: &Args) -> Result<(), CliError> {
    let input = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::config("usage: swscc scc <input>"))?;
    let scale: f64 = args.parsed_flag("scale", 0.25)?;
    let seed: u64 = args.parsed_flag("seed", 42)?;
    let pipeline = match args.flag_value("pipeline") {
        Some(spec) => Some(
            Pipeline::parse(spec)
                .map_err(|e| CliError::config(format!("invalid --pipeline: {e}")))?,
        ),
        None => {
            if args.flag_present("pipeline") {
                return Err(CliError::config(
                    "--pipeline requires a stage list, e.g. trim,fwbw,trim2,wcc,tasks",
                ));
            }
            None
        }
    };
    if pipeline.is_some() && args.flag_present("algo") {
        return Err(CliError::config(
            "--pipeline and --algo are mutually exclusive; a pipeline IS the algorithm",
        ));
    }
    let algo = match &pipeline {
        Some(_) => None,
        None => {
            let algo_name = args.flag_value("algo").unwrap_or("method2");
            Some(Algorithm::from_name(algo_name).ok_or_else(|| {
                CliError::config(format!(
                    "unknown algorithm {algo_name:?}; available: {}",
                    Algorithm::all().map(|a| a.name()).join(", ")
                ))
            })?)
        }
    };
    let mut cfg = SccConfig::with_threads(
        args.parsed_flag(
            "threads",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )?,
    );
    cfg.direction_optimizing = args.flag_present("dobfs");
    cfg.live_set_compaction = match args.flag_value("live-compaction").unwrap_or("auto") {
        "auto" => CompactionPolicy::Auto,
        "always" => CompactionPolicy::Always,
        "never" => CompactionPolicy::Never,
        v => {
            return Err(CliError::config(format!(
                "invalid --live-compaction {v:?} (auto|always|never)"
            )))
        }
    };
    cfg.on_panic = match args.flag_value("on-panic").unwrap_or("fallback") {
        "fallback" => PanicPolicy::Fallback,
        "fail" => PanicPolicy::Fail,
        v => {
            return Err(CliError::config(format!(
                "invalid --on-panic {v:?} (fallback|fail)"
            )))
        }
    };
    let guard = match args.flag_value("timeout") {
        None => {
            if args.flag_present("timeout") {
                return Err(CliError::config("--timeout requires a value in seconds"));
            }
            RunGuard::new()
        }
        Some(v) => {
            let secs: u64 = v
                .parse()
                .map_err(|_| CliError::config(format!("invalid --timeout {v:?} (seconds)")))?;
            RunGuard::with_deadline(Duration::from_secs(secs))
        }
    };
    let _fault_guard = match args.flag_value("inject-fault") {
        Some(spec) => Some(fault::arm(parse_fault(spec)?)),
        None => {
            if args.flag_present("inject-fault") {
                return Err(CliError::config("--inject-fault requires SITE[:NTH]"));
            }
            None
        }
    };

    let g = load_input(input, scale, seed)?;
    eprintln!("loaded: {} nodes, {} edges", g.num_nodes(), g.num_edges());
    let (r, report) = if args.flag_present("compressed") {
        // Compressed backend: every engine stage runs on the byte-delta
        // representation through the GraphView seam; only the pipeline
        // path supports it (the sequential oracles index raw CSR slices).
        let p = match (&pipeline, algo) {
            (Some(p), _) => {
                println!("pipeline:    {p} (compressed)");
                p.clone()
            }
            (None, Some(algo)) => {
                let p = Pipeline::stock(algo).ok_or_else(|| {
                    CliError::config(format!(
                        "--compressed requires a pipeline algorithm (got {:?}); \
                         the sequential oracles run on raw CSR only",
                        algo.name()
                    ))
                })?;
                println!("algorithm:   {} (compressed)", algo.name());
                p
            }
            (None, None) => unreachable!("algo resolved whenever --pipeline is absent"),
        };
        let z = CompressedCsr::from_csr(&g);
        eprintln!("{}", z.memory_footprint());
        run_pipeline(&z, &p, &cfg, &guard)?
    } else {
        match (&pipeline, algo) {
            (Some(p), _) => {
                let out = run_pipeline(&g, p, &cfg, &guard)?;
                println!("pipeline:    {p}");
                out
            }
            (None, Some(algo)) => {
                let out = run_checked(&g, algo, &cfg, &guard)?;
                println!("algorithm:   {}", algo.name());
                out
            }
            (None, None) => unreachable!("algo resolved whenever --pipeline is absent"),
        }
    };
    println!("components:  {}", r.num_components());
    println!("largest scc: {}", r.largest_component_size());
    println!("trivial:     {}", r.num_trivial());
    if pipeline.is_some() {
        // Fig. 7/8-style per-phase breakdown: time + resolved counts.
        print!("{report}");
    } else {
        println!("time:        {:?}", report.total_time);
        for (phase, t) in &report.phase_times {
            println!("  {:<12} {:?}", phase.name(), t);
        }
    }
    for recovery in &report.recoveries {
        let line = match recovery {
            RecoveryEvent::TaskRetried { message } => {
                format!("task retried after boundary panic ({message})")
            }
            RecoveryEvent::DegradedToSequential { message, residue } => {
                format!("degraded to sequential finish on {residue} residue nodes ({message})")
            }
            RecoveryEvent::RestartedSequential { message } => {
                format!("restarted sequentially from scratch ({message})")
            }
            RecoveryEvent::DegradedToQueue { message, residue } => {
                format!("degraded to work-queue tail on {residue} residue nodes ({message})")
            }
        };
        eprintln!("recovery:    {line}");
    }
    if args.flag_present("histogram") {
        println!("scc-size histogram (log-binned):");
        for (lo, count) in r.size_histogram().log_binned() {
            println!("  size ≥ {lo:<10} {count}");
        }
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), CliError> {
    let input = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::config("usage: swscc stats <input>"))?;
    let scale: f64 = args.parsed_flag("scale", 0.25)?;
    let g = load_input(input, scale, 42)?;
    println!("nodes:       {}", g.num_nodes());
    println!("edges:       {}", g.num_edges());
    println!("avg degree:  {:.2}", average_degree(&g));
    println!("diameter:    ~{} (sampled)", estimate_diameter(&g, 8, 1));
    println!("memory:      {} MiB (CSR)", g.memory_bytes() / (1 << 20));
    let max_out = g.nodes().map(|v| g.out_degree(v)).max().unwrap_or(0);
    let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap_or(0);
    println!("max degree:  out={max_out} in={max_in}");
    // Per-backend memory footprint: raw CSR vs the byte-delta compressed
    // form, with the compression ratio the §4.x experiments track.
    println!("{}", g.memory_footprint());
    let z = CompressedCsr::from_csr(&g);
    println!("{}", z.memory_footprint());
    let raw = g.memory_footprint().total_bytes() as f64;
    let zt = z.memory_footprint().total_bytes() as f64;
    println!(
        "compression: {:.2}x ({:.1}% of raw)",
        raw / zt,
        100.0 * zt / raw
    );
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), CliError> {
    let name = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::config("usage: swscc gen <dataset> --out FILE"))?;
    let out = args
        .flag_value("out")
        .ok_or_else(|| CliError::config("missing --out FILE"))?;
    let scale: f64 = args.parsed_flag("scale", 0.25)?;
    let seed: u64 = args.parsed_flag("seed", 42)?;
    let d = Dataset::from_name(name)
        .ok_or_else(|| CliError::config(format!("unknown dataset {name:?}")))?;
    let g = d.generate(scale, seed);
    if out.ends_with(".bin") {
        io::save_binary(&g, out)
            .map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;
    } else {
        io::save_edge_list(&g, out)
            .map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;
    }
    println!(
        "wrote {} ({} nodes, {} edges)",
        out,
        g.num_nodes(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_condense(args: &Args) -> Result<(), CliError> {
    let input = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::config("usage: swscc condense <input> --out FILE"))?;
    let out = args
        .flag_value("out")
        .ok_or_else(|| CliError::config("missing --out FILE"))?;
    let scale: f64 = args.parsed_flag("scale", 0.25)?;
    let g = load_input(input, scale, 42)?;
    let (r, _) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
    let dag = r.condensation(&g);
    io::save_edge_list(&dag, out)
        .map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;
    println!(
        "condensation: {} SCCs, {} edges -> {}",
        dag.num_nodes(),
        dag.num_edges(),
        out
    );
    Ok(())
}

const HELP: &str = "\
swscc — parallel SCC detection for small-world graphs (SC'13 reproduction)

USAGE:
  swscc scc <input> [--algo NAME | --pipeline STAGES] [--threads N] [--scale S]
            [--compressed] [--histogram] [--dobfs]
            [--live-compaction auto|always|never] [--timeout SECS]
            [--on-panic fallback|fail] [--inject-fault SITE[:NTH]]
  swscc stats <input> [--scale S]
  swscc gen <dataset> --out FILE [--scale S] [--seed N]
  swscc condense <input> --out FILE [--scale S]

<input>: an edge-list file (.bin for the binary format), or dataset:<name>
         for a built-in analog
         (livej flickr baidu wiki friend twitter orkut patents ca-road)
--algo:  tarjan kosaraju pearce fwbw coloring baseline method1 method2
         multistep
--pipeline: run a custom stage composition through the phase-pipeline
         engine instead of a named algorithm (mutually exclusive with
         --algo). STAGES is comma-separated from: trim fwbw peel trim2
         wcc coloring colortail serial tasks multisearch; the list must
         end in a terminal stage (tasks, coloring, serial, or
         multisearch) and fwbw/peel may not follow a re-partitioning
         stage (wcc, colortail). Prints a per-phase time/resolved
         breakdown (paper Figs. 7-8).
         Examples:
           --pipeline trim,fwbw,trim,trim2,trim,wcc,tasks   (= method2)
           --pipeline trim,fwbw,wcc,tasks                   (Trim2 ablation)
           --pipeline trim,fwbw,trim,multisearch   (multi-pivot tail)
--compressed: run the phase-pipeline engine on the byte-delta compressed
            CSR backend (~2x smaller); works with --pipeline or any
            pipeline --algo (baseline method1 method2 coloring multistep),
            not the sequential oracles. Prints the memory footprint of
            the compressed form before the run.
--timeout:  abort cleanly with exit code 124 after SECS wall-clock seconds
--on-panic: fallback (default) absorbs worker panics by retrying or
            degrading to a sequential finish; fail exits 70 on first panic
--inject-fault: arm a deterministic panic at the NTH hit of a named fault
            site (recovery-path test aid)

EXIT CODES: 0 ok, 1 runtime failure, 2 bad configuration,
            70 internal failure, 124 timeout
";

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let cmd = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    let result = match cmd {
        "scc" => cmd_scc(&args),
        "stats" => cmd_stats(&args),
        "gen" => cmd_gen(&args),
        "condense" => cmd_condense(&args),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(CliError::config(format!(
            "unknown command {other:?}\n\n{HELP}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}
