//! Instrumentation: per-phase timings and counters, and the recursive-task
//! log — the measurement machinery behind the paper's Figure 7 (execution
//! time breakdown), Figure 8 (fraction of nodes resolved per phase), and
//! the §3.3 first-five-tasks log.

use crate::result::SccResult;
use std::time::{Duration, Instant};
use swscc_parallel::QueueStats;
use swscc_sync::atomic::{AtomicUsize, Ordering};
use swscc_sync::Mutex;

/// The phases of the paper's algorithms, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The first Par-Trim (Alg. 4) — also the *only* trim for Baseline.
    ParTrim,
    /// Data-parallel FW-BW peel of the giant SCC (§3.2, Methods 1 & 2).
    ParFwbw,
    /// Par-Trim2 + surrounding trims after the peel (Par-Trim′; §3.4/3.5).
    ParTrim2,
    /// Parallel weakly-connected-component re-partitioning (Alg. 7).
    ParWcc,
    /// Recursive FW-BW over the work queue (Alg. 5; phase 2).
    RecurFwbw,
}

impl Phase {
    /// All phases in execution order.
    pub fn all() -> [Phase; 5] {
        [
            Phase::ParTrim,
            Phase::ParFwbw,
            Phase::ParTrim2,
            Phase::ParWcc,
            Phase::RecurFwbw,
        ]
    }

    /// Name as used in the Fig. 7 legends.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ParTrim => "par-trim",
            Phase::ParFwbw => "par-fwbw",
            Phase::ParTrim2 => "par-trim2",
            Phase::ParWcc => "par-wcc",
            Phase::RecurFwbw => "recur-fwbw",
        }
    }
}

/// One recorded recursive FW-BW task execution: the sizes the §3.3 log
/// prints (`SCC FW BW Remain`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskLogEntry {
    /// Size of the SCC identified by this task.
    pub scc: usize,
    /// Size of the forward partition pushed back to the queue.
    pub fw: usize,
    /// Size of the backward partition pushed back to the queue.
    pub bw: usize,
    /// Size of the remaining partition pushed back to the queue.
    pub remain: usize,
}

/// One recovery action a checked driver took after catching a worker
/// panic (policy [`crate::config::PanicPolicy::Fallback`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A task died at the work-queue boundary (no shared state touched);
    /// the intact task was re-pushed and the queue run restarted.
    TaskRetried {
        /// The caught panic text.
        message: String,
    },
    /// Boundary retries were exhausted; the surviving residue (state still
    /// consistent — only boundary panics occurred) was finished by
    /// sequential Tarjan on the induced subgraph.
    DegradedToSequential {
        /// The caught panic text.
        message: String,
        /// Alive nodes handed to the sequential finish.
        residue: usize,
    },
    /// A panic fired *inside* a task or a data-parallel kernel, so shared
    /// state may hold partial claims; the whole run was redone from
    /// scratch with sequential Tarjan on the original graph.
    RestartedSequential {
        /// The caught panic text.
        message: String,
    },
    /// A multi-search round panicked before touching shared state (the
    /// searches only write round-local tables), so the intact residue
    /// was handed to the two-level work-queue tail instead.
    DegradedToQueue {
        /// The caught panic text.
        message: String,
        /// Alive nodes handed to the work-queue tail.
        residue: usize,
    },
}

/// Everything measured during one SCC run.
#[derive(Clone, Debug, Default)]
#[must_use = "a RunReport carries recovery events and phase timings the caller should inspect or log"]
pub struct RunReport {
    /// Wall-clock time per phase (zero for phases the method skips).
    pub phase_times: Vec<(Phase, Duration)>,
    /// Nodes whose SCC was resolved in each phase (Fig. 8's fractions).
    pub phase_resolved: Vec<(Phase, usize)>,
    /// Total wall-clock time.
    pub total_time: Duration,
    /// Work-queue statistics from the recursive phase (§3.3's queue-depth
    /// and §5's "about 10,000 work items" observations).
    pub queue: QueueStats,
    /// Number of tasks seeding the recursive phase.
    pub initial_tasks: usize,
    /// Number of Par-FWBW pivot trials used (Methods 1 & 2).
    pub fwbw_trials: usize,
    /// First-N recursive task executions, §3.3 format.
    pub task_log: Vec<TaskLogEntry>,
    /// Recovery actions taken by a checked driver (empty on a clean run
    /// and for the legacy entry points).
    pub recoveries: Vec<RecoveryEvent>,
}

impl RunReport {
    /// Time spent in `phase` (zero if the phase never ran).
    pub fn time_in(&self, phase: Phase) -> Duration {
        self.phase_times
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Nodes resolved in `phase`.
    pub fn resolved_in(&self, phase: Phase) -> usize {
        self.phase_resolved
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Fraction of all resolved nodes attributed to `phase` (Fig. 8).
    pub fn resolved_fraction(&self, phase: Phase) -> f64 {
        let total: usize = self.phase_resolved.iter().map(|(_, n)| n).sum();
        if total == 0 {
            0.0
        } else {
            self.resolved_in(phase) as f64 / total as f64
        }
    }
}

impl std::fmt::Display for RunReport {
    /// Human-readable multi-line summary (phase times, resolution
    /// fractions, queue statistics) — what the CLI and examples print.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "total: {:?}", self.total_time)?;
        for phase in Phase::all() {
            let t = self.time_in(phase);
            let r = self.resolved_in(phase);
            if t != Duration::ZERO || r != 0 {
                writeln!(
                    f,
                    "  {:<11} {:>9.2?}  resolved {:>8} ({:>5.1}%)",
                    phase.name(),
                    t,
                    r,
                    100.0 * self.resolved_fraction(phase)
                )?;
            }
        }
        if self.queue.tasks_executed > 0 {
            writeln!(
                f,
                "  queue: {} initial, {} executed, max depth {}",
                self.initial_tasks, self.queue.tasks_executed, self.queue.max_global_depth
            )?;
        }
        for r in &self.recoveries {
            let what = match r {
                RecoveryEvent::TaskRetried { .. } => "task retried after boundary panic",
                RecoveryEvent::DegradedToSequential { .. } => {
                    "degraded to sequential finish on residue"
                }
                RecoveryEvent::RestartedSequential { .. } => "restarted sequentially from scratch",
                RecoveryEvent::DegradedToQueue { .. } => {
                    "degraded to work-queue tail after search panic"
                }
            };
            writeln!(f, "  recovery: {what}")?;
        }
        Ok(())
    }
}

/// Shared mutable collector threaded through a parallel run. Public so
/// custom pipelines (e.g. the ablation harnesses, which invoke individual
/// kernels) can produce [`RunReport`]s of the same shape.
pub struct Collector {
    start: Instant,
    phase_times: Mutex<Vec<(Phase, Duration)>>,
    phase_resolved: Mutex<Vec<(Phase, usize)>>,
    task_log: Mutex<Vec<TaskLogEntry>>,
    task_log_limit: usize,
    recoveries: Mutex<Vec<RecoveryEvent>>,
    pub(crate) fwbw_trials: AtomicUsize,
}

impl Collector {
    pub fn new(task_log_limit: usize) -> Self {
        Collector {
            start: Instant::now(),
            phase_times: Mutex::new(Vec::new()),
            phase_resolved: Mutex::new(Vec::new()),
            task_log: Mutex::new(Vec::new()),
            task_log_limit,
            recoveries: Mutex::new(Vec::new()),
            fwbw_trials: AtomicUsize::new(0),
        }
    }

    /// Records a panic-recovery action (checked drivers only).
    pub fn record_recovery(&self, event: RecoveryEvent) {
        self.recoveries.lock().push(event);
    }

    /// Times `f` and attributes the duration (and the number of nodes it
    /// reports as resolved) to `phase`. `f` returns resolved-node count.
    pub fn phase<R>(&self, phase: Phase, f: impl FnOnce() -> (usize, R)) -> R {
        let t0 = Instant::now();
        let (resolved, out) = f();
        let dt = t0.elapsed();
        {
            let mut times = self.phase_times.lock();
            match times.iter_mut().find(|(p, _)| *p == phase) {
                Some((_, d)) => *d += dt,
                None => times.push((phase, dt)),
            }
        }
        {
            let mut res = self.phase_resolved.lock();
            match res.iter_mut().find(|(p, _)| *p == phase) {
                Some((_, n)) => *n += resolved,
                None => res.push((phase, resolved)),
            }
        }
        out
    }

    /// Records one recursive task execution if the log is still open.
    pub fn log_task(&self, entry: TaskLogEntry) {
        if self.task_log_limit == 0 {
            return;
        }
        let mut log = self.task_log.lock();
        if log.len() < self.task_log_limit {
            log.push(entry);
        }
    }

    pub fn into_report(self, queue: QueueStats, initial_tasks: usize) -> RunReport {
        RunReport {
            total_time: self.start.elapsed(),
            phase_times: self.phase_times.into_inner(),
            phase_resolved: self.phase_resolved.into_inner(),
            queue,
            initial_tasks,
            // ordering: read at report build, after every phase's workers
            // have joined; nothing concurrent remains.
            fwbw_trials: self.fwbw_trials.load(Ordering::Relaxed),
            task_log: self.task_log.into_inner(),
            recoveries: self.recoveries.into_inner(),
        }
    }
}

/// Wraps a sequential algorithm into the `(result, report)` shape used by
/// [`crate::detect_scc`]: total time only, no phases.
pub fn timed_sequential(f: impl FnOnce() -> SccResult) -> (SccResult, RunReport) {
    let t0 = Instant::now();
    let result = f();
    let report = RunReport {
        total_time: t0.elapsed(),
        ..Default::default()
    };
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_accumulates() {
        let c = Collector::new(0);
        c.phase(Phase::ParTrim, || (10, ()));
        c.phase(Phase::ParTrim, || (5, ()));
        c.phase(Phase::RecurFwbw, || (1, ()));
        let r = c.into_report(QueueStats::default(), 3);
        assert_eq!(r.resolved_in(Phase::ParTrim), 15);
        assert_eq!(r.resolved_in(Phase::RecurFwbw), 1);
        assert_eq!(r.resolved_in(Phase::ParWcc), 0);
        assert!((r.resolved_fraction(Phase::ParTrim) - 15.0 / 16.0).abs() < 1e-12);
        assert_eq!(r.initial_tasks, 3);
    }

    #[test]
    fn task_log_respects_limit() {
        let c = Collector::new(2);
        for i in 0..5 {
            c.log_task(TaskLogEntry {
                scc: i,
                ..Default::default()
            });
        }
        let r = c.into_report(QueueStats::default(), 0);
        assert_eq!(r.task_log.len(), 2);
        assert_eq!(r.task_log[0].scc, 0);
        assert_eq!(r.task_log[1].scc, 1);
    }

    #[test]
    fn task_log_disabled() {
        let c = Collector::new(0);
        c.log_task(TaskLogEntry::default());
        let r = c.into_report(QueueStats::default(), 0);
        assert!(r.task_log.is_empty());
    }

    #[test]
    fn timed_sequential_shape() {
        let (res, rep) = timed_sequential(|| SccResult::from_assignment(vec![0, 1]));
        assert_eq!(res.num_components(), 2);
        assert!(rep.phase_times.is_empty());
        assert_eq!(rep.resolved_fraction(Phase::ParTrim), 0.0);
    }

    #[test]
    fn phase_names() {
        assert_eq!(Phase::all().len(), 5);
        assert_eq!(Phase::ParWcc.name(), "par-wcc");
    }

    #[test]
    fn recoveries_surface_in_report_and_display() {
        let c = Collector::new(0);
        c.record_recovery(RecoveryEvent::TaskRetried {
            message: "injected fault".into(),
        });
        c.record_recovery(RecoveryEvent::DegradedToSequential {
            message: "injected fault".into(),
            residue: 42,
        });
        let r = c.into_report(QueueStats::default(), 0);
        assert_eq!(r.recoveries.len(), 2);
        let text = r.to_string();
        assert!(text.contains("task retried"));
        assert!(text.contains("sequential finish"));
    }

    #[test]
    fn display_renders_phases_and_queue() {
        let c = Collector::new(0);
        c.phase(Phase::ParTrim, || (10, ()));
        c.phase(Phase::RecurFwbw, || (2, ()));
        let r = c.into_report(
            QueueStats {
                max_global_depth: 3,
                max_outstanding: 4,
                tasks_executed: 7,
            },
            2,
        );
        let text = r.to_string();
        assert!(text.contains("par-trim"));
        assert!(text.contains("recur-fwbw"));
        assert!(text.contains("max depth 3"));
        assert!(!text.contains("par-wcc"), "unused phases are omitted");
    }
}
