//! The Coloring (max-label propagation) SCC algorithm — a related-work
//! comparator.
//!
//! Orzan's coloring heuristic (2004) is the other classic
//! distributed/parallel SCC family next to FW-BW; the comparisons the
//! paper cites (\[8\], \[9\]) and its follow-on work (Slota et al.'s
//! Multistep) evaluate against it. One round:
//!
//! 1. every alive node starts with `color = own id`;
//! 2. colors propagate **forward** to a fixpoint, taking the max
//!    (`label(v) = max(label(v), label(u))` over alive in-neighbors `u`);
//!    afterwards each label class is exactly the forward-reachable region
//!    of its *root* (the node whose id equals the label) minus regions of
//!    larger-id roots;
//! 3. for each root `r`, the SCC of `r` is the *backward*-reachable set of
//!    `r` within its label class (Lemma 1 specialized: the class is a
//!    subset of FW(r));
//! 4. detected SCCs are removed; repeat on the residue.
//!
//! Strengths: massively parallel steps, many SCCs per round (one per
//! root). Weakness (why FW-BW-Trim beats it on small-world graphs): the
//! giant SCC's max-id member floods nearly the whole graph each round, so
//! label propagation costs O(diameter · M) per round and small SCCs
//! hidden "behind" the giant one only appear in later rounds.

use crate::config::SccConfig;
use crate::error::{RunGuard, SccError};
use crate::instrument::RunReport;
use crate::pipeline::{run_pipeline, Pipeline};
use crate::result::SccResult;
use swscc_graph::CsrGraph;

/// Runs the Coloring algorithm (legacy entry point; see
/// [`coloring_scc_checked`] for the cancellable form).
pub fn coloring_scc(g: &CsrGraph, cfg: &SccConfig) -> (SccResult, RunReport) {
    coloring_scc_checked(g, cfg, &RunGuard::new())
        .expect("coloring run with a fresh guard cannot abort")
}

/// Runs the Coloring algorithm (with an initial Par-Trim round, as every
/// practical implementation does) under `guard`: cancellable,
/// deadline-aware, and panic-isolating. The stage list is
/// `trim,coloring`; in the [`RunReport`], label-propagation work is
/// attributed to `ParFwbw` (it plays the same "find SCC seeds by
/// reachability" role), the backward-collection to `RecurFwbw`, and the
/// round count lands in both `fwbw_trials` and `initial_tasks`.
pub fn coloring_scc_checked(
    g: &CsrGraph,
    cfg: &SccConfig,
    guard: &RunGuard,
) -> Result<(SccResult, RunReport), SccError> {
    run_pipeline(
        g,
        &Pipeline::stock(crate::Algorithm::Coloring).unwrap(),
        cfg,
        guard,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::tarjan_scc;

    fn check(g: &CsrGraph, threads: usize) {
        let (r, _) = coloring_scc(g, &SccConfig::with_threads(threads));
        assert_eq!(
            r.canonical_labels(),
            tarjan_scc(g).canonical_labels(),
            "coloring disagrees with tarjan"
        );
    }

    #[test]
    fn simple_shapes() {
        check(&CsrGraph::from_edges(0, &[]), 1);
        check(&CsrGraph::from_edges(1, &[(0, 0)]), 1);
        check(
            &CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)]),
            2,
        );
    }

    #[test]
    fn chain_of_cycles() {
        // (0,1) -> (2,3) -> (4,5): coloring resolves the max-id chain first
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 5),
                (5, 4),
            ],
        );
        check(&g, 2);
    }

    #[test]
    fn random_graphs_match_tarjan() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(79);
        for trial in 0..15 {
            let n = rng.random_range(1..150usize);
            let m = rng.random_range(0..5 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            check(&g, 1 + trial % 3);
        }
    }

    #[test]
    fn round_count_reported() {
        // a 3-chain of 2-cycles takes multiple rounds: each round peels the
        // classes whose roots are maximal
        let g = CsrGraph::from_edges(
            6,
            &[
                (5, 4),
                (4, 5),
                (4, 3),
                (3, 2),
                (2, 3),
                (2, 1),
                (1, 0),
                (0, 1),
            ],
        );
        let (r, report) = coloring_scc(&g, &SccConfig::with_threads(1));
        assert_eq!(r.num_components(), 3);
        assert!(report.fwbw_trials >= 1, "rounds = {}", report.fwbw_trials);
    }

    #[test]
    fn dag_fully_trimmed_zero_rounds() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (r, report) = coloring_scc(&g, &SccConfig::with_threads(2));
        assert_eq!(r.num_components(), 5);
        assert_eq!(report.fwbw_trials, 0, "trim leaves nothing to color");
    }
}
