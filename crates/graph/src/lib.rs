//! # swscc-graph — directed-graph substrate
//!
//! Compressed-sparse-row (CSR) directed graphs plus everything needed to
//! *produce* the graph instances evaluated by the SC'13 paper
//! *"On Fast Parallel Detection of Strongly Connected Components (SCC) in
//! Small-World Graphs"* (Hong, Rodia, Olukotun):
//!
//! * [`csr::CsrGraph`] — immutable CSR with forward **and** reverse adjacency
//!   (§4.1 of the paper), the representation all SCC algorithms traverse.
//! * [`view::GraphView`] — the neighbor-access trait every traversal kernel
//!   is generic over, with [`view::MemoryFootprint`] accounting.
//! * [`compressed::CompressedCsr`] — the byte-delta (VarInt) compressed
//!   backend with allocation-free streaming decode and shard-by-shard
//!   streaming construction (GBBS playbook, arXiv 1805.05208).
//! * [`delta::DeltaGraph`] — mutable insert/delete overlay over either
//!   backend (sorted per-vertex deltas, tombstones), itself a `GraphView`,
//!   with a fault-guarded `compact()` rebuild — the streaming-graph seam.
//! * [`builder::GraphBuilder`] — edge-list accumulation with optional
//!   deduplication and self-loop filtering, O(N+M) counting-sort finalize.
//! * [`gen`] — synthetic generators reproducing the structural classes of the
//!   paper's nine datasets: R-MAT / Erdős–Rényi / Watts–Strogatz small-world
//!   graphs, a bow-tie web-graph generator with power-law satellite SCCs, a
//!   citation DAG (Patents analog), and a 2D road lattice (CA-road analog).
//! * [`datasets`] — the per-dataset analog registry used by the benchmark
//!   harness (`livej`, `flickr`, …, `ca_road`).
//! * [`bfs`] — sequential and level-synchronous parallel BFS (§4.2).
//! * [`traverse`] — the unified `EdgeMap` traversal kernel: zero-allocation
//!   frontiers, hybrid sequential fallback, and the Beamer
//!   direction-optimizing switch shared by BFS, the FW/BW peels, and
//!   frontier-driven WCC.
//! * [`stats`] — degree/SCC-size histograms and sampled diameter estimation
//!   (Table 1, Figures 2 and 9).
//! * [`io`] — SNAP-style edge-list text loader/writer so the original
//!   datasets can be dropped in when available.

pub mod bfs;
pub mod builder;
pub mod compressed;
pub mod csr;
pub mod datasets;
pub mod delta;
pub mod gen;
pub mod io;
pub mod stats;
pub mod traverse;
pub mod view;

pub use builder::GraphBuilder;
pub use compressed::CompressedCsr;
pub use csr::{CsrError, CsrGraph, NodeId};
pub use delta::{CompactBackend, DeltaGraph, DeltaStats};
pub use traverse::{Adjacency, EdgeMap, EdgeMapOps, TraversalConfig};
pub use view::{GraphView, MemoryFootprint};
