//@ path: tests/fixture_refs.rs
//! Companion fixture: the test side of the safety-tag cross-reference.

// [inv:good-tag] — this test exercises the invariant the SAFETY comments
// in the bad_unsafe / bad_safety_tag fixtures name.
#[test]
fn good_tag_invariant_holds() {
    assert!(true);
}
