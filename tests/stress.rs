//! Stress tests: larger inputs and adversarial shapes. The heavy cases are
//! `#[ignore]`d in debug builds (where they would take minutes); run
//! `cargo test --release -- --include-ignored` or plain
//! `cargo test --release` (the attribute only fires under
//! `debug_assertions`) to execute everything.

use swscc::graph::datasets::Dataset;
use swscc::graph::gen::{bowtie, BowtieConfig};
use swscc::{detect_scc, Algorithm, CsrGraph, GraphBuilder, SccConfig};

#[test]
#[cfg_attr(debug_assertions, ignore = "stress case; run with --release")]
fn half_scale_livej_all_methods() {
    let g = Dataset::Livej.generate(0.5, 42);
    let (want, _) = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default());
    for algo in [Algorithm::Baseline, Algorithm::Method1, Algorithm::Method2] {
        let (r, _) = detect_scc(&g, algo, &SccConfig::with_threads(4));
        assert_eq!(
            r.canonical_labels(),
            want.canonical_labels(),
            "{} at half scale",
            algo.name()
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "stress case; run with --release")]
fn large_bowtie_matches_planted_truth() {
    let bt = bowtie(&BowtieConfig {
        num_nodes: 150_000,
        ..Default::default()
    });
    let (r, _) = detect_scc(&bt.graph, Algorithm::Method2, &SccConfig::default());
    let planted = swscc::SccResult::from_assignment(bt.component_of.clone());
    assert_eq!(r.canonical_labels(), planted.canonical_labels());
}

#[test]
#[cfg_attr(debug_assertions, ignore = "stress case; run with --release")]
fn task_explosion_many_tiny_sccs() {
    // 30k disjoint 3-cycles, all surviving Trim and Trim2: phase 2 must
    // grind through 30k tasks without starving or deadlocking.
    let k = 30_000u32;
    let mut b = GraphBuilder::new((3 * k) as usize);
    for i in 0..k {
        let base = 3 * i;
        b.add_edge(base, base + 1);
        b.add_edge(base + 1, base + 2);
        b.add_edge(base + 2, base);
    }
    let g = b.build();
    for algo in [Algorithm::Baseline, Algorithm::Method2] {
        let (r, report) = detect_scc(&g, algo, &SccConfig::with_threads(4));
        assert_eq!(r.num_components(), k as usize, "{}", algo.name());
        assert!(report.queue.tasks_executed >= 1);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "stress case; run with --release")]
fn pathological_deep_alternation() {
    // Alternating cycle/tendril chain 40k deep: maximal trim rounds plus a
    // long dependency chain of small SCCs for the recursive phase.
    let layers = 20_000u32;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 0..layers {
        let a = 2 * i;
        let b = 2 * i + 1;
        edges.push((a, b));
        if i % 2 == 0 {
            edges.push((b, a)); // 2-cycle layer
        }
        if i + 1 < layers {
            edges.push((b, 2 * (i + 1)));
        }
    }
    let g = CsrGraph::from_edges((2 * layers) as usize, &edges);
    let (want, _) = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default());
    let (r, _) = detect_scc(&g, Algorithm::Method2, &SccConfig::with_threads(2));
    assert_eq!(r.canonical_labels(), want.canonical_labels());
    // half the layers are pairs, half are two singletons
    assert_eq!(
        r.num_components(),
        (layers / 2 + layers) as usize,
        "pairs + singletons"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "stress case; run with --release")]
fn wide_star_bursts() {
    // Scale-free extreme: one hub with 100k out-edges and 100k in-edges.
    let n = 200_001u32;
    let hub = 0u32;
    let mut edges = Vec::with_capacity(200_000);
    for i in 1..=100_000u32 {
        edges.push((hub, i));
    }
    for i in 100_001..200_001u32 {
        edges.push((i, hub));
    }
    let g = CsrGraph::from_edges(n as usize, &edges);
    let (r, _) = detect_scc(&g, Algorithm::Method1, &SccConfig::with_threads(4));
    assert_eq!(r.num_components(), n as usize, "no cycles anywhere");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "stress case; run with --release")]
fn distributed_half_scale() {
    let g = Dataset::Flickr.generate(0.5, 42);
    let (want, _) = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default());
    let (r, report) = swscc::distributed::dist_scc(&g, 8);
    assert_eq!(r.canonical_labels(), want.canonical_labels());
    assert!(report.messages > 0);
}

#[test]
fn repeated_parallel_runs_under_contention() {
    // Hammer the full pipeline from several OS threads at once (each run
    // spawns its own pool + workers): no cross-run interference allowed.
    let g = Dataset::Baidu.generate(0.1, 42);
    let (want, _) = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default());
    let want = want.canonical_labels();
    swscc_sync::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let (r, _) = detect_scc(&g, Algorithm::Method2, &SccConfig::with_threads(2));
                assert_eq!(r.canonical_labels(), want);
            });
        }
    });
}
