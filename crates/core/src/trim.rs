//! Par-Trim (Algorithm 4): iterative parallel detection of size-1 SCCs.
//!
//! A node with zero in-degree or zero out-degree *within its current
//! partition* cannot be on a cycle, so it is a trivial SCC (McLendon et
//! al.'s Trim step). Trimming a node can expose its neighbors, so the
//! kernel iterates to a fixpoint. §2.2 explains why this one step resolves
//! the plurality of nodes in real graphs: size-1 SCCs dominate the SCC-size
//! distribution (LiveJournal: ~950k of 4.8M nodes).
//!
//! Two implementations of the identical fixpoint:
//!
//! * [`par_trim`] (the default) — frontier-based: after the first full
//!   parallel sweep, later rounds only re-examine the neighbors of nodes
//!   trimmed in the previous round, making deep tendril chains cost
//!   O(chain) instead of O(rounds × N).
//! * [`par_trim_sweeping`] — the paper's Algorithm 4 verbatim: re-sweep
//!   all N nodes per round until nothing changes. Kept as the literal
//!   reference (tests assert equivalence; the `components` criterion bench
//!   measures the gap).
//!
//! In both, trims commit immediately (the paper's `Color(n) ← -1` inside
//! the sweep), so a node may be trimmed in the same round that exposed it;
//! trimming is monotone, so the fixpoint is unchanged.

use crate::state::AlgoState;
use rayon::prelude::*;
use swscc_graph::bfs::Direction;
use swscc_graph::{GraphView, NodeId};

/// `true` if `n` (alive) is trimmable: zero effective in- or out-degree.
#[inline]
fn trimmable<G: GraphView>(state: &AlgoState<'_, G>, n: NodeId) -> bool {
    state.effective_in_degree(n, 1) == 0 || state.effective_out_degree(n, 1) == 0
}

/// Runs Par-Trim to fixpoint over the whole graph. Returns the number of
/// nodes resolved (each becomes its own size-1 SCC).
pub fn par_trim<G: GraphView>(state: &AlgoState<'_, G>) -> usize {
    // Round 0: parallel sweep over the live set — O(N) on a fresh state,
    // O(|residue|) after a post-peel compaction.
    let mut frontier: Vec<NodeId> = state
        .live()
        .par_collect(|v| state.alive(v) && trimmable(state, v));
    let mut resolved = 0usize;
    while !frontier.is_empty() {
        // Cooperative bail-out: trims are monotone and individually
        // complete, so stopping between rounds leaves a consistent state
        // (the driver converts the abort to a typed error).
        if state.should_stop() {
            return resolved;
        }
        swscc_sync::fault::point("trim-round");
        // Claim this round's trims. `resolve_singleton` is an atomic claim,
        // so duplicates in the frontier (a node exposed by two different
        // trimmed neighbors) resolve exactly once.
        let trimmed: Vec<NodeId> = frontier
            .into_par_iter()
            .filter(|&v| state.resolve_singleton(v))
            .collect();
        resolved += trimmed.len();
        // Next round: alive neighbors of trimmed nodes that became
        // trimmable.
        frontier = trimmed
            .par_iter()
            .flat_map_iter(|&v| {
                // One small per-trimmed-node Vec (cold path: frontier
                // expansion, not a decode loop) keeps this backend-generic.
                let mut nbrs = Vec::with_capacity(state.g.out_degree(v) + state.g.in_degree(v));
                state
                    .g
                    .for_each_neighbor(Direction::Forward, v, |w| nbrs.push(w));
                state
                    .g
                    .for_each_neighbor(Direction::Backward, v, |w| nbrs.push(w));
                nbrs
            })
            .filter(|&w| state.alive(w) && trimmable(state, w))
            .collect();
    }
    resolved
}

/// The paper's Algorithm 4 verbatim: full parallel sweeps over all nodes,
/// repeated until a sweep changes nothing. Same fixpoint as [`par_trim`]
/// (tested), higher cost on deep chains — O(rounds × N) sweeps.
pub fn par_trim_sweeping<G: GraphView>(state: &AlgoState<'_, G>) -> usize {
    let n = state.num_nodes();
    let mut resolved = 0usize;
    loop {
        let trimmed: usize = (0..n as NodeId)
            .into_par_iter()
            .filter(|&v| state.alive(v) && trimmable(state, v) && state.resolve_singleton(v))
            .count();
        if trimmed == 0 {
            return resolved;
        }
        resolved += trimmed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swscc_graph::CsrGraph;

    #[test]
    fn isolated_nodes_trim() {
        let g = CsrGraph::from_edges(3, &[]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim(&s), 3);
        assert_eq!(s.count_alive(), 0);
    }

    #[test]
    fn cycle_survives() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim(&s), 0);
        assert_eq!(s.count_alive(), 3);
    }

    #[test]
    fn chain_trims_iteratively() {
        // Fig. 1(b): a -> b -> c plus c,d,e with no cycles; everything trims.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (2, 4), (3, 4)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim(&s), 5);
    }

    #[test]
    fn tail_peels_back_to_cycle() {
        // cycle 0-1-2, tendril chain 2 -> 3 -> 4 -> 5
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim(&s), 3);
        assert!(s.alive(0) && s.alive(1) && s.alive(2));
        assert!(!s.alive(3) && !s.alive(4) && !s.alive(5));
    }

    #[test]
    fn self_loop_node_trims() {
        // self-loops are excluded from effective degrees, so a node whose
        // only "cycle" is a self-loop is still a size-1 SCC and trims.
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim(&s), 2);
    }

    #[test]
    fn respects_color_partitions() {
        // 0 -> 1 -> 2 -> 0 is a cycle, but recolor node 2 into a different
        // partition: 0 and 1 lose the cycle and must trim; 2 trims too.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = AlgoState::new(&g);
        let c = s.alloc_color();
        s.set_color(2, c);
        assert_eq!(par_trim(&s), 3);
    }

    #[test]
    fn long_chain_linear_rounds() {
        let n = 50_000u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim(&s), n as usize);
    }

    #[test]
    fn two_cycle_survives_trim() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (1, 0)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim(&s), 0);
    }

    #[test]
    fn sweeping_variant_same_fixpoint() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(97);
        for _ in 0..20 {
            let n = rng.random_range(1..200usize);
            let m = rng.random_range(0..4 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            let s1 = AlgoState::new(&g);
            let a = par_trim(&s1);
            let s2 = AlgoState::new(&g);
            let b = par_trim_sweeping(&s2);
            assert_eq!(a, b, "different trim counts");
            for v in 0..n as u32 {
                assert_eq!(s1.alive(v), s2.alive(v), "node {v} differs");
            }
        }
    }

    #[test]
    fn sweeping_variant_deep_chain() {
        let n = 5_000u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim_sweeping(&s), n as usize);
    }

    #[test]
    fn result_components_are_singletons() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim(&s), 4);
        let r = s.into_result();
        assert_eq!(r.num_components(), 4);
        assert_eq!(r.num_trivial(), 4);
    }
}
