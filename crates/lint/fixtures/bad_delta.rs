//@ path: crates/serve/src/bad_delta.rs
//! Known-bad: reading beneath the DeltaGraph overlay in serve code.

pub fn stale_base_edge_count(g: &DeltaGraph<CsrGraph>) -> usize {
    g.base().num_edges() //~ delta-overlay
}

pub fn stale_base_rows(g: &DeltaGraph<CsrGraph>, v: u32) -> usize {
    g.base().out_neighbors(v).len() //~ delta-overlay //~ delta-overlay //~ graphview
}

pub fn escapes_the_overlay(g: &DeltaGraph<CsrGraph>) -> bool {
    g.as_csr().is_some() //~ delta-overlay //~ graphview
}

pub fn justified_drift_metric(g: &DeltaGraph<CsrGraph>) -> usize {
    // delta: drift metric deliberately compares overlay vs compacted base.
    g.base().num_edges()
}

pub fn free_function_named_base_is_not_an_escape(g: &DeltaGraph<CsrGraph>) -> usize {
    base(g)
}

fn base(g: &DeltaGraph<CsrGraph>) -> usize {
    g.num_edges()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_diff_overlay_and_base() {
        let g = DeltaGraph::new(CsrGraph::from_edges(1, &[]));
        assert_eq!(g.base().num_edges(), 0);
    }
}
