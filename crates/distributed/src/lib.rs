//! # swscc-distributed — BSP message-passing SCC (the paper's §6)
//!
//! The paper closes with: *"As a next step, we plan to implement our
//! algorithm in a distributed environment. Our extensions can be easily
//! implemented in such an environment as they only require data from
//! direct neighbors."* This crate realizes that plan as a faithful
//! **simulation**: a bulk-synchronous-parallel (BSP) engine where
//!
//! * the node set is block-partitioned across `P` workers,
//! * each worker owns the state (color / degree / label / visited) of its
//!   own nodes and may read adjacency only for nodes it owns,
//! * all cross-partition information flows through explicit messages
//!   delivered at superstep boundaries (double-buffered mailboxes + a
//!   barrier — the standard Pregel/BSP discipline),
//! * termination is global quiescence (no worker sent a message).
//!
//! On top of the engine ([`bsp`]) sit the paper's neighbor-local kernels:
//!
//! * `algorithms::dist_trim` — Par-Trim (Alg. 4) as degree-decrement
//!   notifications,
//! * `algorithms::dist_reach` — the FW/BW wave (parallel BFS of §3.2) as
//!   visit messages,
//! * `algorithms::dist_wcc` — Par-WCC (Alg. 7) as min-label gossip,
//! * [`dist_scc`] — the full pipeline: distributed Trim →
//!   distributed FW-BW peel of the giant SCC → distributed Trim → gather
//!   the (small) residual at the coordinator and finish it sequentially,
//!   the standard practice for the long tail in distributed SCC systems
//!   (the residual is orders of magnitude smaller than N on small-world
//!   graphs — exactly the paper's Fig. 8 observation).
//!
//! This is a *simulation* of distribution (workers are threads in one
//! process and the CSR is physically shared), but the algorithms observe
//! distributed-memory discipline: they never read another partition's
//! state or adjacency directly. DESIGN.md documents this substitution.

pub mod algorithms;
pub mod bsp;
pub mod partition;

pub use algorithms::{dist_scc, DistSccReport};
pub use bsp::{run_supersteps, Outbox};
pub use partition::Partition;
