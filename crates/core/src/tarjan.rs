//! Tarjan's sequential SCC algorithm — the paper's speedup baseline.
//!
//! The classic 1972 algorithm is a single DFS maintaining `index`/`lowlink`
//! values plus a node stack. §4.2 of the paper warns that a recursive
//! implementation needs a program stack proportional to the largest SCC
//! (hundreds of MB for real graphs), so — like the paper's C++ — this is an
//! *iterative* implementation with an explicit control stack. The paper
//! also notes the membership test on the node stack must be O(1): here the
//! `on_stack` flag array plays the paper's "vector + boolean array" role.

// graphview(file): the sequential oracle takes `&CsrGraph` by signature —
// DFS needs random-access neighbor slices, and pinning the baseline to the
// raw backend keeps the speedup denominator honest.

use crate::result::SccResult;
use swscc_graph::{CsrGraph, NodeId};

const UNVISITED: u32 = u32::MAX;

/// Runs Tarjan's algorithm. O(N + M) time, O(N) extra space, no recursion.
///
/// # Examples
///
/// ```
/// use swscc_core::tarjan::tarjan_scc;
/// use swscc_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
/// let r = tarjan_scc(&g);
/// assert_eq!(r.num_components(), 2);
/// assert!(r.same_component(0, 1));
/// assert!(r.same_component(2, 3));
/// ```
pub fn tarjan_scc(g: &CsrGraph) -> SccResult {
    let n = g.num_nodes();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![u32::MAX; n];
    let mut next_index = 0u32;
    let mut next_comp = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    // Control stack: (node, next out-edge offset to examine).
    let mut control: Vec<(NodeId, u32)> = Vec::new();

    for root in 0..n as NodeId {
        if index[root as usize] != UNVISITED {
            continue;
        }
        control.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut ei)) = control.last_mut() {
            let nbrs = g.out_neighbors(v);
            if (*ei as usize) < nbrs.len() {
                let w = nbrs[*ei as usize];
                *ei += 1;
                if index[w as usize] == UNVISITED {
                    // Tree edge: descend.
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    control.push((w, 0));
                } else if on_stack[w as usize] {
                    // Back/cross edge into the current spine.
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                // All edges of v done: pop and propagate lowlink.
                control.pop();
                if let Some(&(parent, _)) = control.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is a root: pop its SCC off the node stack.
                    loop {
                        let w = stack.pop().expect("stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    debug_assert!(comp.iter().all(|&c| c != u32::MAX));
    SccResult::from_assignment(comp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(tarjan_scc(&g).num_components(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = CsrGraph::from_edges(5, &[]);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components(), 5);
        assert_eq!(r.num_trivial(), 5);
    }

    #[test]
    fn single_cycle() {
        let edges: Vec<_> = (0..10u32).map(|i| (i, (i + 1) % 10)).collect();
        let g = CsrGraph::from_edges(10, &edges);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components(), 1);
        assert_eq!(r.largest_component_size(), 10);
    }

    #[test]
    fn dag_is_all_trivial() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components(), 5);
    }

    #[test]
    fn self_loop_is_singleton() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1)]);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components(), 2);
    }

    #[test]
    fn two_cycles_bridge() {
        // 0<->1 -> 2<->3
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components(), 2);
        assert!(r.same_component(0, 1));
        assert!(r.same_component(2, 3));
        assert!(!r.same_component(1, 2));
    }

    #[test]
    fn condensation_is_acyclic() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 5),
                (5, 4),
            ],
        );
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components(), 3);
        let dag = r.condensation(&g);
        // Kahn peel must consume every condensation node.
        let mut indeg: Vec<usize> = dag.nodes().map(|v| dag.in_degree(v)).collect();
        let mut queue: Vec<_> = dag.nodes().filter(|&v| indeg[v as usize] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in dag.out_neighbors(u) {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
        assert_eq!(seen, dag.num_nodes());
    }

    #[test]
    fn long_path_no_stack_overflow() {
        // A 500k-node path would overflow a recursive implementation.
        let n = 500_000u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components(), n as usize);
    }

    #[test]
    fn long_cycle_no_stack_overflow() {
        let n = 500_000u32;
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components(), 1);
        assert_eq!(r.largest_component_size(), n as usize);
    }
}
