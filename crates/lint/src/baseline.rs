//! The suppression baseline: a checked-in list of findings the team has
//! explicitly deferred, each with an expiry date and a reason.
//!
//! Design goals, in order:
//!
//! 1. **No silent rot.** An entry that no longer matches any finding is
//!    *stale* and itself becomes a finding — the file must be
//!    regenerated (`xtask lint --update-baseline`) so reviewers see the
//!    debt shrink in the diff. An entry past its expiry date stops
//!    suppressing and becomes a finding too.
//! 2. **Line-drift resistance.** Entries fingerprint the *content* of
//!    the flagged line (rule + file + trimmed line text), not its line
//!    number, so unrelated edits above don't invalidate the baseline.
//! 3. **Reviewable.** One entry per line, human-readable, with a
//!    mandatory free-text reason.
//!
//! Format (`crates/lint/baseline.lint`, `#` comments allowed):
//!
//! ```text
//! <rule> <fingerprint-hex> <file> expires=YYYY-MM-DD reason=<free text to EOL>
//! ```

use crate::engine::Finding;

/// One parsed baseline entry.
#[derive(Clone, Debug)]
pub struct Entry {
    pub rule: String,
    pub fingerprint: u64,
    pub file: String,
    /// `(year, month, day)` after which the entry stops suppressing.
    pub expires: (i64, u32, u32),
    pub reason: String,
    /// Line in the baseline file, for diagnostics.
    pub line: usize,
}

#[derive(Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
    /// Parse errors: reported as `baseline` findings (never silently
    /// dropped — a malformed suppression must not suppress).
    pub errors: Vec<(usize, String)>,
    /// Today's civil date, injectable for tests.
    today: (i64, u32, u32),
}

/// FNV-1a over rule + file + the flagged line's trimmed text.
pub fn fingerprint(rule: &str, file: &str, anchor: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for chunk in [rule, "\0", file, "\0", anchor.trim()] {
        for b in chunk.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

impl Baseline {
    pub fn empty() -> Baseline {
        Baseline {
            today: today_utc(),
            ..Baseline::default()
        }
    }

    pub fn parse(text: &str) -> Baseline {
        let mut b = Baseline::empty();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_entry(line, i + 1) {
                Ok(e) => b.entries.push(e),
                Err(msg) => b.errors.push((i + 1, msg)),
            }
        }
        b
    }

    #[cfg(test)]
    pub fn with_today(mut self, today: (i64, u32, u32)) -> Baseline {
        self.today = today;
        self
    }

    /// Splits raw findings into (reported, suppressed) and appends the
    /// meta-findings for stale/expired/malformed entries to `reported`.
    pub fn apply(&self, raw: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut reported = Vec::new();
        let mut suppressed = Vec::new();
        let mut matched = vec![false; self.entries.len()];

        'finding: for f in raw {
            let fp = fingerprint(f.rule, &f.file, &f.anchor);
            for (i, e) in self.entries.iter().enumerate() {
                if e.rule == f.rule && e.file == f.file && e.fingerprint == fp {
                    matched[i] = true;
                    if e.expires >= self.today {
                        suppressed.push(f);
                    } else {
                        let mut f = f;
                        f.message = format!(
                            "{} [baseline entry expired {}-{:02}-{:02}: {}]",
                            f.message, e.expires.0, e.expires.1, e.expires.2, e.reason
                        );
                        reported.push(f);
                    }
                    continue 'finding;
                }
            }
            reported.push(f);
        }

        for (e, m) in self.entries.iter().zip(&matched) {
            if !*m {
                reported.push(Finding {
                    rule: "baseline",
                    file: e.file.clone(),
                    line: 0,
                    message: format!(
                        "stale baseline entry (rule `{}`, fingerprint {:016x}) no longer \
                         matches any finding — regenerate with `cargo run -p xtask -- lint \
                         --update-baseline` so the recorded debt shrinks in review",
                        e.rule, e.fingerprint
                    ),
                    anchor: String::new(),
                });
            }
        }
        for (line, msg) in &self.errors {
            reported.push(Finding {
                rule: "baseline",
                file: "crates/lint/baseline.lint".to_string(),
                line: *line,
                message: format!("malformed baseline entry: {msg}"),
                anchor: String::new(),
            });
        }
        (reported, suppressed)
    }

    /// Renders a regenerated baseline for `findings`, keeping the expiry
    /// and reason of entries that still match and stamping new ones with
    /// a 90-day expiry and a placeholder reason to be edited by hand.
    pub fn regenerate(&self, findings: &[Finding]) -> String {
        let mut out = String::from(
            "# swscc-lint suppression baseline.\n\
             # One deferred finding per line; regenerate with:\n\
             #   cargo run -p xtask -- lint --update-baseline\n\
             # Every entry needs a real reason and an expiry — expired or\n\
             # stale entries turn back into findings (see DESIGN.md §13).\n",
        );
        let mut seen = std::collections::BTreeSet::new();
        for f in findings {
            let fp = fingerprint(f.rule, &f.file, &f.anchor);
            if !seen.insert((f.rule, f.file.clone(), fp)) {
                continue;
            }
            let (expires, reason) = self
                .entries
                .iter()
                .find(|e| e.rule == f.rule && e.file == f.file && e.fingerprint == fp)
                .map(|e| (e.expires, e.reason.clone()))
                .unwrap_or_else(|| {
                    (
                        add_days(self.today, 90),
                        "TODO justify or fix (auto-added)".to_string(),
                    )
                });
            out.push_str(&format!(
                "{} {:016x} {} expires={}-{:02}-{:02} reason={}\n",
                f.rule, fp, f.file, expires.0, expires.1, expires.2, reason
            ));
        }
        out
    }
}

fn parse_entry(line: &str, lineno: usize) -> Result<Entry, String> {
    let mut parts = line.splitn(4, ' ');
    let rule = parts.next().ok_or("missing rule")?.to_string();
    let fp = parts.next().ok_or("missing fingerprint")?;
    let fingerprint = u64::from_str_radix(fp, 16).map_err(|_| format!("bad fingerprint `{fp}`"))?;
    let file = parts.next().ok_or("missing file")?.to_string();
    let rest = parts.next().unwrap_or("");
    let rest = rest.trim();
    let expires_kv = rest
        .strip_prefix("expires=")
        .ok_or("missing `expires=YYYY-MM-DD`")?;
    let (date_str, reason_part) = expires_kv.split_once(' ').unwrap_or((expires_kv, ""));
    let expires = parse_date(date_str).ok_or_else(|| format!("bad date `{date_str}`"))?;
    let reason = reason_part
        .trim()
        .strip_prefix("reason=")
        .ok_or("missing `reason=…`")?
        .to_string();
    if reason.is_empty() {
        return Err("empty reason".to_string());
    }
    Ok(Entry {
        rule,
        fingerprint,
        file,
        expires,
        reason,
        line: lineno,
    })
}

fn parse_date(s: &str) -> Option<(i64, u32, u32)> {
    let mut it = s.split('-');
    let y: i64 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some((y, m, d))
}

/// Today as a `(y, m, d)` civil date, UTC, from the system clock.
fn today_utc() -> (i64, u32, u32) {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    civil_from_days(secs.div_euclid(86_400))
}

/// Days-since-epoch → civil date (Howard Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Civil date → days-since-epoch (inverse of [`civil_from_days`]).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = y.div_euclid(400);
    let yoe = y.rem_euclid(400);
    let mp = if m > 2 { m - 3 } else { m + 9 } as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

fn add_days(date: (i64, u32, u32), days: i64) -> (i64, u32, u32) {
    civil_from_days(days_from_civil(date.0, date.1, date.2) + days)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, anchor: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 7,
            message: "m".to_string(),
            anchor: anchor.to_string(),
        }
    }

    #[test]
    fn civil_date_round_trip() {
        for z in [-719_468, -1, 0, 1, 19_000, 20_675, 1_000_000] {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        // 2026-08-09 is 20674 days after the epoch.
        assert_eq!(days_from_civil(2026, 8, 9), 20_674);
    }

    #[test]
    fn live_entry_suppresses() {
        let f = finding("relaxed", "a.rs", "  x.load(Relaxed); ");
        let fp = fingerprint("relaxed", "a.rs", &f.anchor);
        let text = format!("relaxed {fp:016x} a.rs expires=2100-01-01 reason=demo\n");
        let b = Baseline::parse(&text).with_today((2026, 8, 9));
        let (reported, suppressed) = b.apply(vec![f]);
        assert!(reported.is_empty(), "{reported:?}");
        assert_eq!(suppressed.len(), 1);
    }

    #[test]
    fn expired_entry_reports() {
        let f = finding("relaxed", "a.rs", "x");
        let fp = fingerprint("relaxed", "a.rs", "x");
        let text = format!("relaxed {fp:016x} a.rs expires=2020-01-01 reason=old\n");
        let b = Baseline::parse(&text).with_today((2026, 8, 9));
        let (reported, suppressed) = b.apply(vec![f]);
        assert!(suppressed.is_empty());
        assert_eq!(reported.len(), 1);
        assert!(reported[0].message.contains("expired"));
    }

    #[test]
    fn stale_entry_reports() {
        let fp = fingerprint("relaxed", "gone.rs", "x");
        let text = format!("relaxed {fp:016x} gone.rs expires=2100-01-01 reason=r\n");
        let b = Baseline::parse(&text).with_today((2026, 8, 9));
        let (reported, _) = b.apply(vec![]);
        assert_eq!(reported.len(), 1);
        assert_eq!(reported[0].rule, "baseline");
        assert!(reported[0].message.contains("stale"));
    }

    #[test]
    fn malformed_entry_reports() {
        let b = Baseline::parse("relaxed nothex a.rs expires=2100-01-01 reason=r\n");
        let (reported, _) = b.apply(vec![]);
        assert_eq!(reported.len(), 1);
        assert!(reported[0].message.contains("malformed"));
    }

    #[test]
    fn regenerate_preserves_metadata_and_dedups() {
        let f = finding("relaxed", "a.rs", "x");
        let fp = fingerprint("relaxed", "a.rs", "x");
        let text = format!("relaxed {fp:016x} a.rs expires=2030-05-05 reason=carried over\n");
        let b = Baseline::parse(&text).with_today((2026, 8, 9));
        let out = b.regenerate(&[f.clone(), f]);
        let body: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(body.len(), 1);
        assert!(body[0].contains("expires=2030-05-05"));
        assert!(body[0].contains("reason=carried over"));
        let reparsed = Baseline::parse(&out);
        assert!(reparsed.errors.is_empty());
    }
}
