//! Cancellation and deadline behavior of the checked drivers, end to end.
//!
//! The contract under test (see `crates/core/src/error.rs`): a checked
//! run observes cancellation or a passed deadline at its next poll point
//! (superstep / round / task boundary), drains its workers, and returns
//! the matching typed error — it never hangs and never returns a partial
//! result as if it were complete.
//!
//! To make "mid-run" deterministic rather than racy, the tests that need
//! a run to still be in flight when the cancel lands use the fault layer's
//! `Delay` kind to stall a round boundary: the run is provably inside the
//! pipeline while the canceller thread fires. Fault sessions serialize on
//! a process-global mutex, so these tests simply queue behind each other.

use std::time::{Duration, Instant};
use swscc::graph::gen::watts_strogatz::watts_strogatz;
use swscc::sync::fault::{self, FaultKind, FaultPlan};
use swscc::{
    run_checked, run_pipeline, Algorithm, CsrGraph, PanicPolicy, Pipeline, RunGuard, SccConfig,
    SccError,
};

/// Generous wall-clock bound on "cancellation unblocks the run": covers
/// one stalled round (the delay below) plus scheduling noise, while still
/// catching a driver that ignores the token and runs to completion or
/// hangs.
const UNBLOCK_BOUND: Duration = Duration::from_secs(10);

const DELAY_PER_ROUND: Duration = Duration::from_millis(30);

fn test_graph() -> CsrGraph {
    watts_strogatz(400, 6, 0.1, 99)
}

/// Runs `algo` with every round boundary at `site` stalled, cancelling
/// from a second thread shortly after the run starts.
fn cancel_mid_run(algo: Algorithm, site: &'static str, threads: usize) {
    let g = test_graph();
    let mut cfg = SccConfig::with_threads(threads);
    cfg.on_panic = PanicPolicy::Fallback;
    let guard = RunGuard::new();
    let canceller = guard.canceller();

    // Stall every hit of `site` so the run is still inside the pipeline
    // when the cancel lands.
    let _fault = fault::arm(FaultPlan {
        site: Some(site),
        nth: 0,
        kind: FaultKind::Delay(DELAY_PER_ROUND),
        repeat: true,
    });

    let (outcome, elapsed) = swscc::sync::thread::scope(|s| {
        s.spawn(move || {
            swscc::sync::thread::sleep(DELAY_PER_ROUND / 2);
            canceller.cancel();
        });
        let start = Instant::now();
        let outcome = run_checked(&g, algo, &cfg, &guard);
        (outcome, start.elapsed())
    });

    assert_eq!(
        outcome.expect_err(&format!(
            "{algo:?} ({threads} threads) should observe the cancel"
        )),
        SccError::Cancelled
    );
    assert!(
        elapsed < UNBLOCK_BOUND,
        "{algo:?} ({threads} threads) took {elapsed:?} to unblock"
    );
}

/// Like [`cancel_mid_run`], but for a custom `--pipeline` composition:
/// every hit of `site` is stalled so the cancel provably lands mid-run,
/// and the run must surface `SccError::Cancelled` within the bound.
fn cancel_mid_pipeline(spec: &str, site: &'static str, threads: usize) {
    let g = test_graph();
    let pipeline = Pipeline::parse(spec).expect("legal pipeline spec");
    let mut cfg = SccConfig::with_threads(threads);
    cfg.on_panic = PanicPolicy::Fallback;
    let guard = RunGuard::new();
    let canceller = guard.canceller();

    let _fault = fault::arm(FaultPlan {
        site: Some(site),
        nth: 0,
        kind: FaultKind::Delay(DELAY_PER_ROUND),
        repeat: true,
    });

    let (outcome, elapsed) = swscc::sync::thread::scope(|s| {
        s.spawn(move || {
            swscc::sync::thread::sleep(DELAY_PER_ROUND / 2);
            canceller.cancel();
        });
        let start = Instant::now();
        let outcome = run_pipeline(&g, &pipeline, &cfg, &guard);
        (outcome, start.elapsed())
    });

    assert_eq!(
        outcome.expect_err(&format!(
            "{spec:?} ({threads} threads) should observe the cancel"
        )),
        SccError::Cancelled
    );
    assert!(
        elapsed < UNBLOCK_BOUND,
        "{spec:?} ({threads} threads) took {elapsed:?} to unblock"
    );
}

#[test]
fn cancel_unblocks_every_driver() {
    for threads in [1, 2, 4] {
        cancel_mid_run(Algorithm::Baseline, "trim-round", threads);
        cancel_mid_run(Algorithm::Method1, "fwbw-superstep", threads);
        cancel_mid_run(Algorithm::Method2, "wcc-round", threads);
        cancel_mid_run(Algorithm::Coloring, "coloring-round", threads);
        cancel_mid_run(Algorithm::Multistep, "fwbw-superstep", threads);
    }
}

#[test]
fn cancel_unblocks_multisearch_at_round_boundary() {
    // The multisearch fault site sits at the top of each round, before
    // the searches launch: the stalled round proves the cancel lands at
    // a round boundary and the kernel bails without resolving from
    // partial reach tables. (`trim,multisearch` — not a full fwbw
    // prefix, which would resolve the whole test graph and leave
    // multisearch no round to stall.)
    for threads in [1, 2, 4] {
        cancel_mid_pipeline("multisearch", "multisearch-round", threads);
        cancel_mid_pipeline("trim,multisearch", "multisearch-round", threads);
    }
}

#[test]
fn expired_deadline_rejects_before_work() {
    let g = test_graph();
    let cfg = SccConfig::with_threads(2);
    for &algo in &[
        Algorithm::Baseline,
        Algorithm::Method1,
        Algorithm::Method2,
        Algorithm::Coloring,
        Algorithm::Multistep,
        // Sequential oracles go through the same guard check in
        // `run_checked`.
        Algorithm::Tarjan,
    ] {
        let guard = RunGuard::with_deadline(Duration::ZERO);
        assert_eq!(
            run_checked(&g, algo, &cfg, &guard).expect_err("deadline already passed"),
            SccError::DeadlineExceeded,
            "{algo:?}"
        );
    }
}

#[test]
fn deadline_trips_mid_run() {
    // Stall rounds so a short-but-nonzero deadline expires while the run
    // is demonstrably inside the pipeline.
    let g = test_graph();
    let cfg = SccConfig::with_threads(2);
    let _fault = fault::arm(FaultPlan {
        site: Some("trim-round"),
        nth: 0,
        kind: FaultKind::Delay(DELAY_PER_ROUND),
        repeat: true,
    });
    let guard = RunGuard::with_deadline(DELAY_PER_ROUND / 2);
    let start = Instant::now();
    let outcome = run_checked(&g, Algorithm::Method2, &cfg, &guard);
    assert_eq!(
        outcome.expect_err("deadline should expire mid-run"),
        SccError::DeadlineExceeded
    );
    assert!(start.elapsed() < UNBLOCK_BOUND);
}

#[test]
fn dropping_guard_cancels_for_detached_observers() {
    // The documented drop contract: a caller that abandons the guard
    // cancels the run. Simulate the abandoned-run half with a thread that
    // starts the run against a guard the main thread drops.
    let g = test_graph();
    let cfg = SccConfig::with_threads(2);
    let guard = RunGuard::new();
    let canceller = guard.canceller(); // keeps the Arc alive past the drop

    let _fault = fault::arm(FaultPlan {
        site: Some("trim-round"),
        nth: 0,
        kind: FaultKind::Delay(DELAY_PER_ROUND),
        repeat: true,
    });

    swscc::sync::thread::scope(|scope| {
        let run = scope.spawn(|| run_checked(&g, Algorithm::Method1, &cfg, &guard));
        swscc::sync::thread::sleep(DELAY_PER_ROUND / 2);
        // `guard` is borrowed by the runner thread; cancelling through the
        // detached handle is the same code path a drop takes.
        canceller.cancel();
        let outcome = run.join().expect("runner must not panic");
        assert_eq!(outcome.expect_err("cancelled"), SccError::Cancelled);
    });
}

#[test]
fn cancelled_run_leaves_fresh_guard_reusable() {
    // A cancelled run must not leave poisoned global state behind: the
    // same graph, config and algorithm succeed with a fresh guard.
    let g = test_graph();
    let cfg = SccConfig::with_threads(2);

    let guard = RunGuard::new();
    guard.cancel();
    assert_eq!(
        run_checked(&g, Algorithm::Method2, &cfg, &guard).expect_err("pre-cancelled"),
        SccError::Cancelled
    );

    let (result, _) = run_checked(&g, Algorithm::Method2, &cfg, &RunGuard::new())
        .expect("fresh guard must succeed");
    let (oracle, _) = run_checked(&g, Algorithm::Tarjan, &cfg, &RunGuard::new()).unwrap();
    assert_eq!(result.canonical_labels(), oracle.canonical_labels());
}
