//@ path: crates/core/src/ok_adversarial.rs
//! Adversarial negative fixture: everything below LOOKS like a violation
//! to a line-based scanner but is trivia or data to the token stream.

pub fn raw_strings_hide_keywords() -> &'static str {
    r#"unsafe { std::sync::atomic::AtomicUsize }"#
}

pub fn raw_hash_depth() -> &'static str {
    r##"Ordering::Relaxed and "# inside" and catch_unwind("##
}

/* A plain block comment may mention Ordering::Relaxed freely.
   /* nested: std::thread::spawn(|| {}) stays commented out */
   still inside the outer comment: catch_unwind(
*/
pub fn after_nested_comment() -> u32 {
    0
}

pub fn lifetimes_are_not_chars<'a>(x: &'a u32) -> &'a u32 {
    let _c: char = 'u';
    let _q: char = '\'';
    let _b: u8 = b'\'';
    x
}

pub fn labels_too() {
    'outer: loop {
        break 'outer;
    }
}

pub fn numbers_and_ranges() -> f64 {
    let _r = 1..10;
    let _e = 1e-9;
    let _h = 0xFF_u32;
    2.5
}

pub fn byte_strings() -> &'static [u8] {
    b"std::sync::atomic"
}
