//@ path: crates/serve/src/bad_serve.rs
//! Known-bad: raw socket writes in serve code with no write timeout in
//! scope. A slow-reading peer parks the writing thread forever.

pub fn reply_without_timeout(stream: &mut TcpStream, payload: &[u8]) {
    stream.write_all(payload).unwrap(); //~ socket-timeout
}

pub fn partial_write_without_timeout(stream: &mut TcpStream, b: &[u8]) -> usize {
    stream.write(b).unwrap() //~ socket-timeout
}

pub fn justified_write(stream: &mut TcpStream, payload: &[u8]) {
    // serve: the accept loop armed both timeouts on this socket before
    // handing it to us.
    stream.write_all(payload).unwrap();
}

pub fn path_form_is_not_a_socket(path: &str, json: &str) {
    std::fs::write(path, json).unwrap();
}

pub fn free_macro_is_not_a_socket(n: usize) -> String {
    format!("{n} frames")
}

#[cfg(test)]
mod tests {
    use std::io::Write;

    #[test]
    fn test_code_is_exempt() {
        let mut sink = Vec::new();
        sink.write_all(b"frame").unwrap();
    }
}
