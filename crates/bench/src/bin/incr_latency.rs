//! Incremental-vs-recompute latency artifact (EXPERIMENTS.md §4.5).
//!
//! The claim under test: once the partition is maintained, a single
//! mutation costs its *residue*, not the graph — an in-order insert is
//! O(1), a back-edge merge pays the condensation window, a delete
//! repays only its dirty SCC, and each of the two repair paths must be
//! ≥ 10x faster (p50) than the full recompute the daemon would
//! otherwise run.
//!
//! Method: build the engine on an R-MAT graph (`SWSCC_RMAT_SCALE`,
//! default 18 — the acceptance graph), then
//!
//! 1. time `rebuild()` as the recompute baseline (median of
//!    `SWSCC_REPS`),
//! 2. stream random cross-pair inserts (`rand:` buckets, each undone
//!    right away) — realistic small-world traffic whose merge windows
//!    are uncontrolled and can swallow the giant SCC,
//! 3. run controlled round trips over pairs of *isolated* nodes
//!    (`pair:` buckets): insert u→v, insert v→u (a back-edge merge
//!    with residue exactly 2), delete v→u (a dirty repair of that
//!    2-SCC), delete u→v. Isolation means no base path can widen the
//!    window, so these are honest "single mutation" costs — R-MAT's
//!    degree skew always leaves plenty of isolated nodes,
//! 4. replay the pair script under compaction thresholds
//!    {0 = never, 64, 1024} for the ablation.
//!
//! Every mutation is bucketed by its returned [`MutationOutcome`] —
//! nothing is dropped silently; the full histogram is part of the
//! report. The 10x acceptance gate reads `pair:merge` and
//! `pair:delete_repair`.
//!
//! Writes the JSON artifact to `SWSCC_REPORT` (default
//! `target/incremental-latency.json`) — the CI `incremental` lane
//! uploads it. Exit 1 if either repair path misses the 10x bar.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;
use swscc_bench::{median_time, ms, print_header, reps};
use swscc_core::incremental::{IncrementalEngine, MutationOutcome};
use swscc_core::{detect_scc, Algorithm, Pipeline, RunGuard, SccConfig};
use swscc_graph::gen::rmat::{rmat, RmatConfig};
use swscc_graph::{CsrGraph, DeltaGraph};

const PAIR_SAMPLES: usize = 300;
const INSERT_SAMPLES: usize = 400;
const ABLATION_THRESHOLDS: [usize; 3] = [0, 64, 1024];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Latency bucket: one per mutation-outcome class.
#[derive(Default)]
struct Bucket {
    nanos: Vec<u64>,
}

impl Bucket {
    fn push(&mut self, ns: u64) {
        self.nanos.push(ns);
    }

    fn percentile_us(&mut self, p: f64) -> f64 {
        if self.nanos.is_empty() {
            return f64::NAN;
        }
        self.nanos.sort_unstable();
        let idx = ((self.nanos.len() - 1) as f64 * p).round() as usize;
        self.nanos[idx] as f64 / 1e3
    }

    fn json(&mut self, name: &str) -> String {
        format!(
            "\"{name}\":{{\"count\":{},\"p50_us\":{:.2},\"p99_us\":{:.2}}}",
            self.nanos.len(),
            self.percentile_us(0.50),
            self.percentile_us(0.99),
        )
    }
}

fn outcome_class(o: &MutationOutcome) -> &'static str {
    match o {
        MutationOutcome::Noop => "noop",
        MutationOutcome::InOrder => "in_order",
        MutationOutcome::Reordered => "reordered",
        MutationOutcome::Merged { .. } => "merge",
        MutationOutcome::Repaired { .. } => "delete_repair",
        MutationOutcome::Rebuilt => "rebuilt",
    }
}

fn main() -> ExitCode {
    print_header("incremental maintenance vs full recompute (§4.5)");
    let scale: u32 = std::env::var("SWSCC_RMAT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(18);
    let reps = reps();
    let g = rmat(&RmatConfig::graph500(scale, 8, 0x5cc));
    let (nodes, edges) = (g.num_nodes(), g.num_edges());
    println!("rmat-s{scale}: {nodes} nodes, {edges} edges");

    // Oracle labels gate the random phase; isolated nodes seed the
    // controlled phase (no base path can widen a merge window between
    // two isolated nodes, so residue is exactly 2 by construction —
    // the honest claim is cost ∝ residue, and deleting inside the
    // giant SCC would exceed `incremental_residue_limit` and degrade
    // to the very recompute it is compared against).
    let cfg = SccConfig::default();
    let labels = detect_scc(&g, Algorithm::Tarjan, &cfg).0.canonical_labels();
    let mut touched = vec![false; nodes];
    for (u, v) in g.edges() {
        touched[u as usize] = true;
        touched[v as usize] = true;
    }
    let isolated: Vec<u32> = (0..nodes as u32)
        .filter(|&n| !touched[n as usize])
        .take(2 * PAIR_SAMPLES)
        .collect();
    let pairs: Vec<(u32, u32)> = isolated.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    println!(
        "controlled pairs from isolated nodes: {} (wanted {PAIR_SAMPLES})",
        pairs.len()
    );

    let guard = RunGuard::new();
    let pipeline = Pipeline::stock(Algorithm::Method2).expect("method2 has a stock pipeline");
    let mut engine = IncrementalEngine::new(DeltaGraph::new(g.clone()), pipeline, cfg, &guard)
        .expect("initial build");

    // Baseline: the full recompute a batch-only daemon pays per change.
    let recompute = median_time(reps, || {
        engine.rebuild(&guard).expect("rebuild");
    });
    println!("full recompute: {} ms (median of {reps})", ms(recompute));

    // Mutation stream, bucketed by `phase:outcome`.
    let mut buckets: HashMap<String, Bucket> = HashMap::new();
    let time_one = |engine: &mut IncrementalEngine<CsrGraph>,
                    buckets: &mut HashMap<String, Bucket>,
                    phase: &str,
                    insert: bool,
                    u: u32,
                    v: u32| {
        let t0 = Instant::now();
        let outcome = if insert {
            engine.insert_edge(u, v, &guard)
        } else {
            engine.delete_edge(u, v, &guard)
        }
        .expect("mutation");
        let ns = t0.elapsed().as_nanos() as u64;
        buckets
            .entry(format!("{phase}:{}", outcome_class(&outcome)))
            .or_default()
            .push(ns);
    };

    // Random cross pairs, undone right away: realistic traffic. The
    // occasional merge here closes an uncontrolled condensation window
    // (often through the giant SCC) — reported, but not the gate.
    let mut rng = 0x0121_75cc_u64;
    for _ in 0..INSERT_SAMPLES {
        let u = (splitmix64(&mut rng) % nodes as u64) as u32;
        let v = (splitmix64(&mut rng) % nodes as u64) as u32;
        if labels[u as usize] == labels[v as usize] {
            continue;
        }
        time_one(&mut engine, &mut buckets, "rand", true, u, v);
        engine.delete_edge(u, v, &guard).expect("undo insert");
    }

    // Controlled round trips: insert u→v, insert v→u (residue-2 merge),
    // delete v→u (residue-2 repair), delete u→v.
    for &(u, v) in &pairs {
        time_one(&mut engine, &mut buckets, "pair", true, u, v);
        time_one(&mut engine, &mut buckets, "pair", true, v, u);
        time_one(&mut engine, &mut buckets, "pair", false, v, u);
        time_one(&mut engine, &mut buckets, "pair", false, u, v);
    }

    println!(
        "\n{:<20} {:>7} {:>12} {:>12}",
        "bucket", "count", "p50 us", "p99 us"
    );
    let mut classes: Vec<String> = buckets.keys().cloned().collect();
    classes.sort_unstable();
    for class in &classes {
        let b = buckets.get_mut(class).unwrap();
        println!(
            "{:<20} {:>7} {:>12.2} {:>12.2}",
            class,
            b.nanos.len(),
            b.percentile_us(0.50),
            b.percentile_us(0.99)
        );
    }

    // Compaction-threshold ablation. A full round trip cancels out of
    // the overlay, so each pair leaves its u→v edge pending (net +1
    // per pair) — the overlay genuinely deepens and the threshold has
    // something to fire on. Leftovers are deleted and folded between
    // runs so every threshold starts from a clean base.
    println!("\ncompaction ablation ({} mutations/run):", 3 * pairs.len());
    let mut ablation_rows = Vec::new();
    for threshold in ABLATION_THRESHOLDS {
        let t0 = Instant::now();
        let mut compactions = 0u64;
        for &(u, v) in &pairs {
            engine.insert_edge(u, v, &guard).expect("ablation insert");
            engine.insert_edge(v, u, &guard).expect("ablation insert");
            engine.delete_edge(v, u, &guard).expect("ablation delete");
            if threshold > 0 && engine.graph().pending() >= threshold {
                engine.compact();
                compactions += 1;
            }
        }
        let total = t0.elapsed();
        println!(
            "  threshold {:>5}: {:>9} ms total, {compactions} compactions, {} pending at end",
            threshold,
            ms(total),
            engine.graph().pending()
        );
        ablation_rows.push(format!(
            "{{\"threshold\":{threshold},\"total_ms\":{:.2},\"compactions\":{compactions}}}",
            total.as_secs_f64() * 1e3
        ));
        for &(u, v) in &pairs {
            engine.delete_edge(u, v, &guard).expect("ablation cleanup");
        }
        engine.compact();
    }

    // Acceptance: both repair paths ≥ 10x faster (p50) than recompute.
    let recompute_us = recompute.as_secs_f64() * 1e6;
    let mut verdicts = Vec::new();
    for class in ["pair:merge", "pair:delete_repair"] {
        let Some(b) = buckets.get_mut(class) else {
            verdicts.push(format!("{class}: NO SAMPLES — sampling bug"));
            continue;
        };
        let p50 = b.percentile_us(0.50);
        let speedup = recompute_us / p50;
        println!("{class}: p50 {p50:.2} us vs recompute {recompute_us:.0} us — {speedup:.0}x");
        if speedup < 10.0 {
            verdicts.push(format!("{class}: only {speedup:.1}x (< 10x bar)"));
        }
    }

    let report = format!(
        "{{\"graph\":\"rmat-s{scale}\",\"nodes\":{nodes},\"edges\":{edges},\
         \"recompute_ms\":{:.2},{},\"ablation\":[{}]}}\n",
        recompute.as_secs_f64() * 1e3,
        classes
            .into_iter()
            .map(|c| buckets.get_mut(&c).unwrap().json(&c))
            .collect::<Vec<_>>()
            .join(","),
        ablation_rows.join(","),
    );
    let path = std::env::var("SWSCC_REPORT")
        .unwrap_or_else(|_| "target/incremental-latency.json".to_string());
    match std::fs::write(&path, &report) {
        Ok(()) => println!("\nartifact written to {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(1);
        }
    }

    if verdicts.is_empty() {
        println!("acceptance: both repair paths clear the 10x bar ✓");
        ExitCode::SUCCESS
    } else {
        for v in &verdicts {
            eprintln!("acceptance FAILED — {v}");
        }
        ExitCode::from(1)
    }
}
