//! Food-web analysis via SCC condensation.
//!
//! The paper's introduction cites complex food-web analysis (Allesina et
//! al., reference \[3\]) as an SCC application: species that prey on each
//! other — directly or through a cycle of intermediaries — form ecological
//! subsystems (SCCs), and the condensation DAG orders those subsystems into
//! trophic levels. This example builds a synthetic food web, finds its
//! subsystems with the library, and prints a topological ordering of the
//! condensation.
//!
//! ```text
//! cargo run --release --example foodweb_condensation
//! ```

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use swscc::{detect_scc, Algorithm, CsrGraph, GraphBuilder, SccConfig};

/// Builds a synthetic food web: `levels` trophic layers; each species eats
/// a few species from the layer below, and a fraction of layers contain
/// cyclic subsystems (mutual predation loops, e.g. adults of A eat juveniles
/// of B and vice versa).
fn build_food_web(levels: usize, per_level: usize, seed: u64) -> CsrGraph {
    let n = levels * per_level;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let id = |level: usize, i: usize| (level * per_level + i) as u32;
    for level in 1..levels {
        for i in 0..per_level {
            // predator -> prey edges into the layer below
            let meals = rng.random_range(1..4usize);
            for _ in 0..meals {
                let prey = rng.random_range(0..per_level);
                b.add_edge(id(level, i), id(level - 1, prey));
            }
        }
        // occasional mutual-predation loop inside the layer
        if rng.random_bool(0.5) {
            let x = rng.random_range(0..per_level);
            let y = rng.random_range(0..per_level);
            if x != y {
                b.add_edge(id(level, x), id(level, y));
                b.add_edge(id(level, y), id(level, x));
            }
        }
    }
    b.build()
}

fn main() {
    let g = build_food_web(6, 30, 7);
    println!(
        "food web: {} species, {} feeding links",
        g.num_nodes(),
        g.num_edges()
    );

    let (scc, _) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
    println!(
        "ecological subsystems (SCCs): {} ({} multi-species)",
        scc.num_components(),
        scc.component_sizes().iter().filter(|&&s| s > 1).count()
    );

    for (c, size) in scc.component_sizes().iter().enumerate() {
        if *size > 1 {
            println!(
                "  subsystem {c}: {} mutually-dependent species {:?}",
                size,
                scc.members(c as u32)
            );
        }
    }

    // Condensation: acyclic, so a topological order exists — the "who
    // depends on whom" ordering of subsystems.
    let dag = scc.condensation(&g);
    let mut indeg: Vec<usize> = dag.nodes().map(|v| dag.in_degree(v)).collect();
    let mut frontier: Vec<u32> = dag.nodes().filter(|&v| indeg[v as usize] == 0).collect();
    let mut order = Vec::new();
    while let Some(u) = frontier.pop() {
        order.push(u);
        for &v in dag.out_neighbors(u) {
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                frontier.push(v);
            }
        }
    }
    assert_eq!(order.len(), dag.num_nodes(), "condensation must be a DAG");
    println!(
        "condensation: {} super-nodes, {} edges — topological order verified ✓",
        dag.num_nodes(),
        dag.num_edges()
    );

    // Basal species = subsystems with no outgoing feeding links (level 0).
    let basal = dag.nodes().filter(|&v| dag.out_degree(v) == 0).count();
    let apex = dag.nodes().filter(|&v| dag.in_degree(v) == 0).count();
    println!("basal subsystems: {basal}, apex subsystems: {apex}");
}
