//! Rule 2 — Relaxed justification: every `Ordering::Relaxed` in non-test
//! code must carry a `// ordering:` comment (same line or earlier in the
//! same paragraph) naming its A1–A5 argument (DESIGN.md §8).
//!
//! Token-aware: an `Ordering::` split across lines no longer evades the
//! rule, and an `// ordering:` that only appears inside a string or a
//! doc comment no longer satisfies it.

use crate::engine::{Finding, Rule, Workspace};
use crate::rules::{finding_at, Code};
use crate::source::SourceFile;

pub struct Relaxed;

impl Rule for Relaxed {
    fn name(&self) -> &'static str {
        "relaxed"
    }

    fn description(&self) -> &'static str {
        "every Ordering::Relaxed in non-test code carries an `// ordering:` justification"
    }

    fn check_file(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Finding>) {
        if ws.config.is_facade_exempt(&file.rel_path) {
            return;
        }
        let code = Code::new(file);
        for i in 0..code.len() {
            if !code.path_at(i, &["Ordering", "Relaxed"]) {
                continue;
            }
            if file.in_test_code(code.offset(i)) {
                continue;
            }
            if !file.has_justification(code.line(i), "// ordering:") {
                out.push(finding_at(
                    &code,
                    i,
                    self.name(),
                    "`Ordering::Relaxed` without an `// ordering:` justification comment \
                     (same line or earlier in the same paragraph; doc comments and strings \
                     don't count)"
                        .to_string(),
                ));
            }
        }
    }
}
