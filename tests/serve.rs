//! End-to-end tests of the always-on SCC service over real sockets.
//!
//! Each test boots a full [`Server`] (accept loop on its own thread,
//! kernel-assigned TCP port or a temp unix socket), drives it with the
//! blocking [`Client`] or a raw socket, and asserts the availability
//! doctrine from the outside: typed errors on the wire, epoch
//! continuity across failed recomputes, quarantine that costs exactly
//! one connection, and a clean shutdown handshake.
//!
//! Every test holds an armed fault session — a real plan or an inert
//! one — because live queries cross `fault::point(serve-frame)`; the
//! session mutex serializes the tests so a single-shot plan armed by
//! one test is never consumed by another's traffic.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;
use swscc::graph::CsrGraph;
use swscc::serve::protocol::{self, Request};
use swscc::serve::{
    Client, Endpoint, FrameError, Listener, Response, ServeConfig, ServedGraph, Server,
};
use swscc::sync::fault::{self, FaultKind, FaultPlan};

/// Two 3-cycles bridged by an edge, plus a tail: SCCs {0,1,2}, {3,4,5},
/// {6}; the condensation is a 3-node path.
fn bridge_graph() -> ServedGraph {
    ServedGraph::Raw(CsrGraph::from_edges(
        7,
        &[
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (5, 6),
        ],
    ))
}

/// Boots a server on `endpoint` (use `127.0.0.1:0` to let the kernel
/// pick) and returns the instance, the *resolved* endpoint, and the
/// accept-loop thread handle for the shutdown join.
fn boot(
    graph: ServedGraph,
    config: ServeConfig,
    endpoint: &Endpoint,
) -> (
    Arc<Server>,
    Endpoint,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let listener = Listener::bind(endpoint).expect("bind");
    let bound = listener.local_endpoint().expect("resolved endpoint");
    let server = Server::new(graph, config).expect("initial snapshot");
    let loop_server = Arc::clone(&server);
    let handle = swscc::sync::thread::spawn(move || loop_server.run(listener));
    (server, bound, handle)
}

/// An inert armed session (never-matching site): serializes this test
/// with genuinely-armed ones without injecting anything.
fn quiesce() -> fault::FaultGuard {
    fault::arm(FaultPlan {
        site: Some("serve-e2e-inert"),
        nth: 0,
        kind: FaultKind::Panic,
        repeat: false,
    })
}

fn temp_socket(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("swscc-e2e-{tag}-{}.sock", std::process::id()))
}

#[test]
fn full_query_surface_and_shutdown_over_tcp() {
    let _quiet = quiesce();
    let (_server, bound, handle) = boot(
        bridge_graph(),
        ServeConfig::default(),
        &Endpoint::Tcp("127.0.0.1:0".into()),
    );
    let mut c = Client::connect(&bound, Duration::from_secs(5)).expect("connect");

    c.ping().expect("ping");
    assert_eq!(c.same_scc(0, 2, 0), Ok(Response::Bool(true)));
    assert_eq!(c.same_scc(0, 3, 0), Ok(Response::Bool(false)));
    assert_eq!(c.condensation_reach(0, 6, 0), Ok(Response::Bool(true)));
    assert_eq!(c.condensation_reach(6, 0, 0), Ok(Response::Bool(false)));
    assert_eq!(c.scc_id(999, 0), Ok(Response::OutOfRange));

    let stats = c.stats().expect("stats");
    assert_eq!(stats.epoch, 0);
    assert_eq!(stats.num_nodes, 7);
    assert_eq!(stats.num_components, 3);

    assert_eq!(c.recompute(), Ok(Response::Recomputed { epoch: 1 }));
    assert_eq!(c.stats().expect("stats after recompute").epoch, 1);

    // Queries answered after the swap come from the new epoch with the
    // same partition (the graph did not change).
    assert_eq!(c.same_scc(3, 5, 0), Ok(Response::Bool(true)));

    c.shutdown().expect("shutdown handshake");
    handle
        .join()
        .expect("accept loop must not panic")
        .expect("accept loop exits cleanly");
    // The listener is gone with the loop; a fresh dial must fail.
    assert!(
        Client::connect(&bound, Duration::from_millis(500)).is_err(),
        "post-shutdown connect must be refused"
    );
}

#[test]
fn unix_socket_serves_and_unlinks_on_shutdown() {
    let _quiet = quiesce();
    let path = temp_socket("unix");
    let (_server, bound, handle) = boot(
        bridge_graph(),
        ServeConfig::default(),
        &Endpoint::Unix(path.clone()),
    );
    assert!(path.exists(), "socket file present while serving");
    let mut c = Client::connect(&bound, Duration::from_secs(5)).expect("connect");
    assert_eq!(c.same_scc(3, 4, 0), Ok(Response::Bool(true)));
    c.shutdown().expect("shutdown handshake");
    handle.join().expect("no panic").expect("clean exit");
    assert!(
        !path.exists(),
        "socket file must be unlinked when the listener drops"
    );
}

#[test]
fn failed_recompute_keeps_serving_old_epoch_on_the_wire() {
    // One-shot panic at the swap point: the first recompute must fail
    // with a typed reply while queries keep answering from epoch 0.
    let _armed = fault::arm(FaultPlan {
        site: Some(fault::SERVE_SWAP),
        nth: 0,
        kind: FaultKind::Panic,
        repeat: false,
    });
    let (_server, bound, handle) = boot(
        bridge_graph(),
        ServeConfig::default(),
        &Endpoint::Tcp("127.0.0.1:0".into()),
    );
    let mut c = Client::connect(&bound, Duration::from_secs(5)).expect("connect");

    match c
        .recompute()
        .expect("typed reply, not a dropped connection")
    {
        Response::RecomputeFailed { message } => {
            assert!(message.contains("injected fault"), "got {message:?}")
        }
        other => panic!("wrong reply: {other:?}"),
    }
    // Same connection, same server: still answering, still epoch 0,
    // flagged stale.
    assert_eq!(c.same_scc(0, 1, 0), Ok(Response::Bool(true)));
    let stats = c.stats().expect("stats");
    assert_eq!(stats.epoch, 0, "failed swap must not advance the epoch");
    assert_eq!(stats.recomputes_failed, 1);
    assert!(stats.stale);

    // The one-shot plan is spent: the service heals on the next admin
    // request.
    assert_eq!(c.recompute(), Ok(Response::Recomputed { epoch: 1 }));
    assert!(!c.stats().expect("stats").stale);

    c.shutdown().expect("shutdown");
    handle.join().expect("no panic").expect("clean exit");
}

#[test]
fn overload_sheds_with_typed_retry_hint() {
    // A repeating delay at the query fault point simulates slow
    // answers; with max_inflight = 1 the second concurrent query must
    // be shed at the door, not queued behind the slow one.
    let _armed = fault::arm(FaultPlan {
        site: Some(fault::SERVE_FRAME),
        nth: 0,
        kind: FaultKind::Delay(Duration::from_millis(300)),
        repeat: true,
    });
    let config = ServeConfig {
        max_inflight: 1,
        retry_after_ms: 17,
        ..ServeConfig::default()
    };
    let (server, bound, handle) =
        boot(bridge_graph(), config, &Endpoint::Tcp("127.0.0.1:0".into()));

    let slow_bound = bound.clone();
    let slow = swscc::sync::thread::spawn(move || {
        let mut c = Client::connect(&slow_bound, Duration::from_secs(5)).expect("connect");
        c.scc_id(0, 0)
    });
    // Give the slow query time to be admitted and park in its delay.
    swscc::sync::thread::sleep(Duration::from_millis(60));
    let mut c = Client::connect(&bound, Duration::from_secs(5)).expect("connect");
    assert_eq!(
        c.scc_id(1, 0),
        Ok(Response::Overloaded { retry_after_ms: 17 }),
        "second concurrent query must shed with the configured hint"
    );
    assert_eq!(
        slow.join().expect("no panic"),
        Ok(Response::Id(0)),
        "the admitted slow query still completes"
    );
    let stats = c.stats().expect("stats");
    assert!(stats.shed >= 1, "shed counter must record the rejection");

    server.request_shutdown();
    handle.join().expect("no panic").expect("clean exit");
}

#[test]
fn expired_deadline_is_typed_on_the_wire() {
    let _armed = fault::arm(FaultPlan {
        site: Some(fault::SERVE_FRAME),
        nth: 0,
        kind: FaultKind::Delay(Duration::from_millis(40)),
        repeat: false,
    });
    let (server, bound, handle) = boot(
        bridge_graph(),
        ServeConfig::default(),
        &Endpoint::Tcp("127.0.0.1:0".into()),
    );
    let mut c = Client::connect(&bound, Duration::from_secs(5)).expect("connect");
    assert_eq!(
        c.condensation_reach(0, 6, 1),
        Ok(Response::DeadlineExceeded),
        "a 1ms budget under a 40ms injected stall must miss, typed"
    );
    assert_eq!(c.stats().expect("stats").deadline_misses, 1);
    server.request_shutdown();
    handle.join().expect("no panic").expect("clean exit");
}

/// Writes raw bytes as the peer of a live server and reads back one
/// frame, using the public protocol helpers from the client side.
fn raw_exchange(bound: &Endpoint, wire: &[u8]) -> Result<Response, FrameError> {
    let addr = match bound {
        Endpoint::Tcp(addr) => addr.clone(),
        Endpoint::Unix(_) => unreachable!("raw tests use TCP"),
    };
    let mut s = std::net::TcpStream::connect(&addr).expect("raw connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(wire).expect("raw write");
    let payload = protocol::read_frame(&mut s, protocol::MAX_RESPONSE_FRAME)?;
    protocol::decode_response(&payload)
}

#[test]
fn hostile_frames_quarantine_one_connection_not_the_listener() {
    let _quiet = quiesce();
    let (server, bound, handle) = boot(
        bridge_graph(),
        ServeConfig::default(),
        &Endpoint::Tcp("127.0.0.1:0".into()),
    );

    // A 4 GiB length prefix: typed BadRequest, then the connection dies.
    match raw_exchange(&bound, &u32::MAX.to_le_bytes()) {
        Ok(Response::BadRequest { message }) => {
            assert!(message.contains("oversized"), "got {message:?}")
        }
        other => panic!("wrong reply to hostile prefix: {other:?}"),
    }

    // An unknown verb inside a well-formed frame: same treatment.
    let mut wire = Vec::new();
    protocol::write_frame(&mut wire, &[0x7f]).unwrap();
    match raw_exchange(&bound, &wire) {
        Ok(Response::BadRequest { message }) => {
            assert!(message.contains("unknown request verb"), "got {message:?}")
        }
        other => panic!("wrong reply to unknown verb: {other:?}"),
    }

    // A quarantined connection is closed after its BadRequest: a second
    // frame on the same socket gets no reply.
    {
        let addr = match &bound {
            Endpoint::Tcp(addr) => addr.clone(),
            Endpoint::Unix(_) => unreachable!(),
        };
        let mut s = std::net::TcpStream::connect(&addr).expect("raw connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut wire = Vec::new();
        protocol::write_frame(&mut wire, &[0x7f]).unwrap();
        s.write_all(&wire).expect("hostile frame");
        let _ = protocol::read_frame(&mut s, protocol::MAX_RESPONSE_FRAME)
            .expect("the typed BadRequest");
        s.write_all(&wire).expect("kernel buffers the write");
        let mut rest = Vec::new();
        let n = s.read_to_end(&mut rest).unwrap_or(0);
        assert_eq!(n, 0, "quarantined connection must be closed, got {rest:?}");
    }

    // The listener and fresh connections are unharmed, and the
    // quarantine counter recorded each hostile peer.
    let mut c = Client::connect(&bound, Duration::from_secs(5)).expect("fresh connect");
    c.ping().expect("server still healthy");
    let stats = c.stats().expect("stats");
    assert!(
        stats.quarantined >= 3,
        "three hostile connections, got {}",
        stats.quarantined
    );

    server.request_shutdown();
    handle.join().expect("no panic").expect("clean exit");
}

#[test]
fn idle_connection_is_reaped_by_the_io_timeout() {
    let _quiet = quiesce();
    let config = ServeConfig {
        io_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let (server, bound, handle) =
        boot(bridge_graph(), config, &Endpoint::Tcp("127.0.0.1:0".into()));
    let mut c = Client::connect(&bound, Duration::from_secs(5)).expect("connect");
    c.ping().expect("live connection answers");
    // Stay silent past the server's read timeout: the handler drops us.
    swscc::sync::thread::sleep(Duration::from_millis(400));
    assert!(
        c.ping().is_err(),
        "a connection idle past io_timeout must be reaped"
    );
    // Reaping is per-connection; the service itself is fine.
    let mut fresh = Client::connect(&bound, Duration::from_secs(5)).expect("reconnect");
    fresh.ping().expect("fresh connection answers");
    server.request_shutdown();
    handle.join().expect("no panic").expect("clean exit");
}

#[test]
fn loadgen_against_live_server_is_deterministic_and_typed_only() {
    let _quiet = quiesce();
    let path = temp_socket("loadgen");
    let (server, bound, handle) = boot(
        bridge_graph(),
        ServeConfig::default(),
        &Endpoint::Unix(path),
    );
    let opts = swscc::serve::LoadgenOptions {
        clients: 2,
        requests_per_client: 60,
        deadline_ms: 2_000,
        // No recomputes (or writes): admission shedding around a
        // recompute resolves nondeterministically under concurrency, so
        // replay-equality below needs a purely read-only mix against a
        // static epoch.
        mix: swscc::serve::Mix {
            recompute: 0,
            ..swscc::serve::Mix::default()
        },
        ..swscc::serve::LoadgenOptions::default()
    };
    let report = swscc::serve::loadgen::run(&bound, &opts).expect("loadgen run");
    assert_eq!(report.attempted, 120);
    assert_eq!(
        report.non_typed_failures, 0,
        "a healthy server must never produce a non-typed failure"
    );
    assert!(report.ok > 0, "vacuous run");
    assert!(report.p99_us >= report.p50_us);

    // Determinism: the same seed against the same server replays the
    // same request sequence — the request-side counters must agree.
    let replay = swscc::serve::loadgen::run(&bound, &opts).expect("replay");
    assert_eq!(replay.attempted, report.attempted);
    assert_eq!(replay.out_of_range, report.out_of_range);

    server.request_shutdown();
    handle.join().expect("no panic").expect("clean exit");

    // Loadgen against a dead endpoint is a typed Err, not a panic.
    assert!(swscc::serve::loadgen::run(&bound, &opts).is_err());
}

#[test]
fn frame_handler_panic_costs_one_connection_only() {
    // A one-shot panic at the query fault point: the connection that
    // triggers it dies silently; the next connection works.
    let _armed = fault::arm(FaultPlan {
        site: Some(fault::SERVE_FRAME),
        nth: 0,
        kind: FaultKind::Panic,
        repeat: false,
    });
    let (server, bound, handle) = boot(
        bridge_graph(),
        ServeConfig::default(),
        &Endpoint::Tcp("127.0.0.1:0".into()),
    );
    let mut victim = Client::connect(&bound, Duration::from_secs(5)).expect("connect");
    match victim.scc_id(0, 0) {
        Err(FrameError::ConnectionClosed) | Err(FrameError::Io(_)) => {}
        other => panic!("panicked handler must drop the connection, got {other:?}"),
    }
    let mut c = Client::connect(&bound, Duration::from_secs(5)).expect("reconnect");
    c.ping().expect("listener survived the handler panic");
    assert_eq!(c.scc_id(0, 0), Ok(Response::Id(0)), "queries recovered");
    let stats = c.stats().expect("stats");
    assert!(stats.quarantined >= 1, "panic must count as quarantine");
    server.request_shutdown();
    handle.join().expect("no panic").expect("clean exit");
}

#[test]
fn wrong_deadline_zero_uses_server_default_and_huge_is_clamped() {
    let _quiet = quiesce();
    // A tiny max_deadline keeps the clamp observable: a u32::MAX budget
    // must behave exactly like the cap, i.e. still answer fine here.
    let config = ServeConfig {
        default_deadline_ms: 2_000,
        max_deadline_ms: 2_000,
        ..ServeConfig::default()
    };
    let (server, bound, handle) =
        boot(bridge_graph(), config, &Endpoint::Tcp("127.0.0.1:0".into()));
    let mut c = Client::connect(&bound, Duration::from_secs(5)).expect("connect");
    assert_eq!(c.same_scc(0, 1, 0), Ok(Response::Bool(true)));
    assert_eq!(c.same_scc(0, 1, u32::MAX), Ok(Response::Bool(true)));
    assert_eq!(
        c.call(&Request::CondReach {
            u: 0,
            v: 6,
            deadline_ms: u32::MAX
        }),
        Ok(Response::Bool(true))
    );
    server.request_shutdown();
    handle.join().expect("no panic").expect("clean exit");
}
