//! The daemon: accept loop, per-connection handlers, epoch-published
//! snapshots, admission control, and the recompute path.
//!
//! # Availability doctrine
//!
//! The server's one invariant is that **a serving epoch is always
//! installed**. The initial snapshot is built synchronously before the
//! listener opens (a broken graph fails startup loudly); from then on,
//! every recompute builds its replacement *off to the side* and swaps
//! it in atomically via [`EpochCell`], so:
//!
//! * readers never block on a recompute and never observe a torn
//!   snapshot (the epoch and payload travel in one `Arc`);
//! * a recompute that fails — typed error or injected panic — leaves
//!   the previous epoch serving, flips the `stale` stats flag, and
//!   answers the admin with a typed `RecomputeFailed`.
//!
//! # Request lifecycle
//!
//! `read frame → decode → admission → deadline guard → dispatch`, with
//! a panic boundary around the whole dispatch: a handler panic (e.g. a
//! `serve-frame` injected fault) quarantines that one connection while
//! the listener and every other connection keep going. Malformed,
//! oversized, or truncated frames get a typed `BadRequest` reply and
//! the same quarantine — a client speaking garbage loses its
//! connection, never the server.

use crate::admission::AdmissionGate;
use crate::net::{Endpoint, Listener, Stream};
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, FrameError, MutOp, MutateReply,
    Request, Response, MAX_REQUEST_FRAME,
};
use crate::stats::ServerStats;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Duration;
use swscc_core::incremental::{IncrementalEngine, Mutation, MutationOutcome};
use swscc_core::snapshot::SccSnapshot;
use swscc_core::{Algorithm, Pipeline, RunGuard, SccConfig, SccError};
use swscc_graph::{CompressedCsr, CsrGraph, DeltaGraph};
use swscc_sync::atomic::{AtomicBool, Ordering};
use swscc_sync::epoch::EpochCell;
use swscc_sync::{fault, Mutex};

/// The graph a server answers queries about, in either storage backend.
/// The snapshot build is generic over [`swscc_graph::GraphView`], so the compressed
/// backend serves without ever materializing the raw CSR.
pub enum ServedGraph {
    /// Raw CSR adjacency.
    Raw(CsrGraph),
    /// Byte-delta compressed adjacency.
    Compressed(CompressedCsr),
}

/// The mutable maintenance engine behind the serve layer, over either
/// storage backend. Every verb that writes (mutations, compaction, the
/// admin recompute) goes through this enum under the engine mutex; reads
/// never touch it — they answer from the published epoch.
enum EngineKind {
    /// Engine over raw CSR + delta overlay.
    Raw(IncrementalEngine<CsrGraph>),
    /// Engine over compressed CSR + delta overlay.
    Compressed(IncrementalEngine<CompressedCsr>),
}

macro_rules! with_engine {
    ($kind:expr, $e:ident => $body:expr) => {
        match $kind {
            EngineKind::Raw($e) => $body,
            EngineKind::Compressed($e) => $body,
        }
    };
}

impl EngineKind {
    fn apply(&mut self, m: Mutation, guard: &RunGuard) -> Result<MutationOutcome, SccError> {
        with_engine!(self, e => e.apply(m, guard))
    }

    fn snapshot(&self, guard: &RunGuard) -> Result<SccSnapshot, SccError> {
        with_engine!(self, e => e.snapshot(guard))
    }

    fn rebuild(&mut self, guard: &RunGuard) -> Result<(), SccError> {
        with_engine!(self, e => e.rebuild(guard))
    }

    fn compact(&mut self) -> usize {
        with_engine!(self, e => e.compact())
    }

    fn poison(&mut self) {
        with_engine!(self, e => e.poison())
    }

    fn pending(&self) -> usize {
        with_engine!(self, e => e.graph().pending())
    }

    fn num_components(&self) -> usize {
        with_engine!(self, e => e.num_components())
    }
}

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Stage list run at startup and on every recompute.
    pub pipeline: Pipeline,
    /// SCC run configuration (threads, panic policy, ...).
    pub scc: SccConfig,
    /// Admission cap: concurrent admitted queries across all
    /// connections. Excess is shed with `Overloaded`.
    pub max_inflight: usize,
    /// Deadline budget applied when a request says `0`.
    pub default_deadline_ms: u32,
    /// Upper clamp on any client-supplied deadline budget.
    pub max_deadline_ms: u32,
    /// Read *and* write timeout on every connection. Doubles as idle
    /// reaping: a connection silent for this long is dropped.
    pub io_timeout: Duration,
    /// Backoff hint carried in `Overloaded` replies.
    pub retry_after_ms: u32,
    /// Auto-compaction threshold: after a mutation leaves at least this
    /// many deltas pending in the overlay, the write folds them into a
    /// fresh base before publishing. `0` disables auto-compaction (the
    /// `compact` admin verb still works).
    pub compact_threshold: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            pipeline: Pipeline::stock(Algorithm::Method2)
                .expect("method2 is a pipelined algorithm"),
            scc: SccConfig::default(),
            max_inflight: 64,
            default_deadline_ms: 1_000,
            max_deadline_ms: 60_000,
            io_timeout: Duration::from_secs(5),
            retry_after_ms: 25,
            compact_threshold: 4096,
        }
    }
}

/// One always-on SCC service instance. Construct with [`Server::new`]
/// (which builds the epoch-0 snapshot synchronously), then drive the
/// accept loop with [`Server::run`].
pub struct Server {
    /// The mutable graph + maintained partition; locked only by write
    /// verbs (mutations, compaction, recompute). Readers answer from
    /// the published epoch and never contend on this.
    engine: Mutex<EngineKind>,
    config: ServeConfig,
    cell: EpochCell<SccSnapshot>,
    gate: AdmissionGate,
    stats: ServerStats,
    /// The write-side admission gate: serializes every state-changing
    /// verb (mutation, batch, compaction, recompute). A write arriving
    /// while one is in flight is shed with `Overloaded`, not queued —
    /// the daemon's first duty stays read availability. Doubles as the
    /// `mutating` stats flag.
    write_busy: AtomicBool,
    /// Polled by the accept loop; set by the `shutdown` verb or
    /// [`Server::request_shutdown`].
    shutdown: AtomicBool,
}

/// Clears the write-busy flag on scope exit, including unwinds —
/// a panicking write must never wedge the write verbs forever.
struct BusyReset<'a>(&'a AtomicBool);

impl Drop for BusyReset<'_> {
    fn drop(&mut self) {
        // ordering: Relaxed — the flag is a pure mutual-exclusion gate
        // for the admin verb; the snapshot itself is published through
        // the EpochCell's lock, not through this flag.
        self.0.store(false, Ordering::Relaxed);
    }
}

impl Server {
    /// Builds the maintenance engine and the initial snapshot
    /// (synchronously — a server that cannot compute its graph once
    /// must not open a listener) and returns the ready-to-run instance.
    pub fn new(graph: ServedGraph, config: ServeConfig) -> Result<Arc<Server>, SccError> {
        let guard = RunGuard::new();
        let engine = match graph {
            ServedGraph::Raw(g) => EngineKind::Raw(IncrementalEngine::new(
                DeltaGraph::new(g),
                config.pipeline.clone(),
                config.scc,
                &guard,
            )?),
            ServedGraph::Compressed(g) => EngineKind::Compressed(IncrementalEngine::new(
                DeltaGraph::new(g),
                config.pipeline.clone(),
                config.scc,
                &guard,
            )?),
        };
        let snapshot = engine.snapshot(&guard)?;
        let gate = AdmissionGate::new(config.max_inflight);
        Ok(Arc::new(Server {
            engine: Mutex::new(engine),
            config,
            cell: EpochCell::new(snapshot),
            gate,
            stats: ServerStats::new(),
            write_busy: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        }))
    }

    /// Epoch of the snapshot currently serving.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Asks the accept loop to exit after its current poll. Connection
    /// handlers finish their in-flight frame and then die with their
    /// sockets.
    pub fn request_shutdown(&self) {
        // ordering: Relaxed — a go/no-go flag polled every ~1ms by the
        // accept loop; no data is published through it.
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Runs the accept loop on `listener` until shutdown is requested.
    /// Nonblocking accepts interleave with shutdown polls, so the loop
    /// can never park in the kernel past a shutdown request; handler
    /// threads are detached and bounded by the per-connection I/O
    /// timeouts.
    pub fn run(self: &Arc<Self>, listener: Listener) -> std::io::Result<()> {
        loop {
            // ordering: Relaxed — see `request_shutdown`.
            if self.shutdown.load(Ordering::Relaxed) {
                return Ok(());
            }
            match listener.accept() {
                Ok(stream) => {
                    if stream.set_timeouts(self.config.io_timeout).is_err() {
                        // A socket that cannot take timeouts would be a
                        // handler thread we cannot bound: drop it.
                        continue;
                    }
                    let server = Arc::clone(self);
                    drop(swscc_sync::thread::spawn(move || {
                        server.handle_connection(stream)
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    swscc_sync::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Binds `endpoint` and runs the accept loop on it. Convenience for
    /// the binary; tests usually bind first to learn the real port.
    pub fn serve(self: &Arc<Self>, endpoint: &Endpoint) -> std::io::Result<()> {
        self.run(Listener::bind(endpoint)?)
    }

    fn reply(&self, stream: &mut Stream, response: &Response) -> Result<(), FrameError> {
        write_frame(stream, &encode_response(response))
    }

    /// One connection's frame loop. Returns (dropping the socket) on
    /// clean close, transport errors, quarantine, or shutdown.
    fn handle_connection(&self, mut stream: Stream) {
        loop {
            let payload = match read_frame(&mut stream, MAX_REQUEST_FRAME) {
                Ok(p) => p,
                Err(FrameError::ConnectionClosed) => return,
                Err(FrameError::Io(_)) => return, // timeout/reset: silent drop
                Err(malformed) => {
                    // Oversized or truncated wire data: typed reply,
                    // then quarantine the connection — its framing is
                    // not trustworthy anymore.
                    self.stats.quarantine();
                    let _ = self.reply(
                        &mut stream,
                        &Response::BadRequest {
                            message: malformed.to_string(),
                        },
                    );
                    return;
                }
            };
            let request = match decode_request(&payload) {
                Ok(r) => r,
                Err(bad) => {
                    self.stats.quarantine();
                    let _ = self.reply(
                        &mut stream,
                        &Response::BadRequest {
                            message: bad.to_string(),
                        },
                    );
                    return;
                }
            };
            // recovery: panic boundary per frame — an injected
            // `serve-frame` fault (or a real handler bug) must cost
            // exactly one connection, never the accept loop; the
            // payload is rethrown nowhere, the connection is
            // quarantined and dropped.
            let outcome =
                std::panic::catch_unwind(AssertUnwindSafe(|| self.handle_request(&request)));
            match outcome {
                Ok(response) => {
                    let closing = matches!(response, Response::ShuttingDown);
                    if self.reply(&mut stream, &response).is_err() {
                        return; // slow/dead client: its timeout fired, drop it
                    }
                    if closing {
                        return;
                    }
                }
                Err(_panic) => {
                    self.stats.quarantine();
                    return;
                }
            }
        }
    }

    /// Decoded-request dispatch. Infallible by type: every failure mode
    /// is a `Response` variant (panics are caught one level up).
    fn handle_request(&self, request: &Request) -> Response {
        match *request {
            Request::Ping => Response::Pong,
            Request::Stats => self.stats_reply(),
            Request::Shutdown => {
                self.request_shutdown();
                Response::ShuttingDown
            }
            Request::Recompute => self.recompute(),
            Request::SameScc { u, v, deadline_ms } => self.query(deadline_ms, |snap, guard| {
                guard.check()?;
                Ok(match snap.same_scc(u, v) {
                    Some(b) => Response::Bool(b),
                    None => Response::OutOfRange,
                })
            }),
            Request::SccId { u, deadline_ms } => self.query(deadline_ms, |snap, guard| {
                guard.check()?;
                Ok(match snap.scc_id(u) {
                    Some(id) => Response::Id(id),
                    None => Response::OutOfRange,
                })
            }),
            Request::CondReach { u, v, deadline_ms } => self.query(deadline_ms, |snap, guard| {
                Ok(match snap.condensation_reach(u, v, guard)? {
                    Some(b) => Response::Bool(b),
                    None => Response::OutOfRange,
                })
            }),
            Request::InsertEdge { u, v, deadline_ms } => {
                self.mutate(deadline_ms, &[MutOp { insert: true, u, v }])
            }
            Request::DeleteEdge { u, v, deadline_ms } => self.mutate(
                deadline_ms,
                &[MutOp {
                    insert: false,
                    u,
                    v,
                }],
            ),
            Request::BatchMutate {
                deadline_ms,
                ref ops,
            } => self.mutate(deadline_ms, ops),
            Request::Compact => self.compact(),
        }
    }

    /// The write path: one gate admission, then the whole batch applies
    /// under the engine mutex and publishes a **single** repaired epoch.
    /// Failure of any kind — a typed engine error, or a panic from an
    /// injected `incr-merge` fault — leaves the previous epoch serving,
    /// poisons the engine (it heals by rebuild on the next write), and
    /// answers with a typed `MutateFailed`.
    fn mutate(&self, deadline_ms: u32, ops: &[MutOp]) -> Response {
        // The node set is fixed for the server's lifetime, so range is
        // checkable against the serving snapshot without the engine
        // lock — an out-of-range id is a typed client error, not a
        // poison-the-engine event.
        let n = self.cell.load().value().num_nodes() as u32;
        if ops.iter().any(|op| op.u >= n || op.v >= n) {
            return Response::OutOfRange;
        }
        let Some(_busy) = self.claim_write() else {
            return Response::Overloaded {
                retry_after_ms: self.config.retry_after_ms,
            };
        };
        let guard = RunGuard::with_deadline(self.clamp_deadline(deadline_ms));
        let mut engine = self.engine.lock();
        let compact_threshold = self.config.compact_threshold;
        // recovery: panic boundary around the engine write — an escaped
        // panic (injected incr-merge fault, or a worker panic inside a
        // residue pipeline) must degrade to a typed MutateFailed with
        // the old epoch still serving, never take the daemon down.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut reply = MutateReply::default();
            for op in ops {
                let m = if op.insert {
                    Mutation::Insert(op.u, op.v)
                } else {
                    Mutation::Delete(op.u, op.v)
                };
                match engine.apply(m, &guard)? {
                    MutationOutcome::Noop => reply.noops += 1,
                    MutationOutcome::InOrder | MutationOutcome::Reordered => reply.applied += 1,
                    MutationOutcome::Merged { .. } => {
                        reply.applied += 1;
                        reply.merges += 1;
                    }
                    MutationOutcome::Repaired { parts } => {
                        reply.applied += 1;
                        if parts > 1 {
                            reply.splits += 1;
                        }
                    }
                    MutationOutcome::Rebuilt => {
                        reply.applied += 1;
                        reply.rebuilds += 1;
                    }
                }
            }
            let mut compacted = false;
            if compact_threshold > 0 && engine.pending() >= compact_threshold {
                engine.compact();
                compacted = true;
            }
            let snapshot = engine.snapshot(&guard)?;
            reply.epoch = self.cell.publish(snapshot);
            reply.num_components = engine.num_components() as u64;
            reply.pending_deltas = engine.pending() as u64;
            Ok::<(MutateReply, bool), SccError>((reply, compacted))
        }));
        match outcome {
            Ok(Ok((reply, compacted))) => {
                self.stats.mutation_ok();
                if compacted {
                    self.stats.compaction();
                }
                self.stats.set_pending_deltas(reply.pending_deltas);
                Response::Mutated(reply)
            }
            Ok(Err(e)) => {
                // The engine poisoned itself on the typed error; the
                // next write heals by rebuild.
                self.stats.mutation_failed();
                match e {
                    SccError::DeadlineExceeded => {
                        self.stats.deadline_miss();
                        Response::DeadlineExceeded
                    }
                    other => Response::MutateFailed {
                        message: other.to_string(),
                    },
                }
            }
            Err(panic_payload) => {
                engine.poison();
                self.stats.mutation_failed();
                Response::MutateFailed {
                    message: fault::panic_text(panic_payload.as_ref()),
                }
            }
        }
    }

    /// The admin compaction: fold the delta overlay into a fresh base.
    /// The partition is untouched, so no epoch is published; a killed
    /// compaction (injected `delta-compact` fault) loses only the
    /// rebuild work — the old base + overlay keep answering.
    fn compact(&self) -> Response {
        let Some(_busy) = self.claim_write() else {
            return Response::Overloaded {
                retry_after_ms: self.config.retry_after_ms,
            };
        };
        let mut engine = self.engine.lock();
        // recovery: a panic mid-compaction fires before the backend
        // swap by construction (the delta-compact fault site), so the
        // engine state is intact; poisoning anyway buys rebuild-healing
        // against a mid-swap bug at the cost of one recompute.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| engine.compact()));
        match outcome {
            Ok(folded) => {
                self.stats.compaction();
                self.stats.set_pending_deltas(engine.pending() as u64);
                Response::Compacted {
                    epoch: self.cell.epoch(),
                    folded: folded as u64,
                }
            }
            Err(panic_payload) => {
                engine.poison();
                self.stats.mutation_failed();
                Response::MutateFailed {
                    message: fault::panic_text(panic_payload.as_ref()),
                }
            }
        }
    }

    /// CAS-claims the write gate; the returned guard clears it on every
    /// exit path including unwinds. `None` = another write is in flight.
    fn claim_write(&self) -> Option<BusyReset<'_>> {
        // ordering: Relaxed — pure mutual exclusion for write verbs
        // (see BusyReset); engine state is handed off through the
        // engine mutex, the snapshot through the EpochCell lock.
        self.write_busy
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .ok()?;
        Some(BusyReset(&self.write_busy))
    }

    /// Shared query path: admission → deadline guard → fault point →
    /// snapshot load → answer. The permit is held for the whole answer
    /// and released on every exit path (Drop), including unwinds.
    fn query(
        &self,
        deadline_ms: u32,
        answer: impl FnOnce(&SccSnapshot, &RunGuard) -> Result<Response, SccError>,
    ) -> Response {
        let Some(_permit) = self.gate.try_admit() else {
            self.stats.shed();
            return Response::Overloaded {
                retry_after_ms: self.config.retry_after_ms,
            };
        };
        self.stats.query();
        let guard = RunGuard::with_deadline(self.clamp_deadline(deadline_ms));
        fault::point(fault::SERVE_FRAME);
        let snapshot = self.cell.load();
        match answer(snapshot.value(), &guard) {
            Ok(response) => response,
            Err(e) => self.error_response(e),
        }
    }

    fn clamp_deadline(&self, requested_ms: u32) -> Duration {
        let ms = if requested_ms == 0 {
            self.config.default_deadline_ms
        } else {
            requested_ms.min(self.config.max_deadline_ms)
        };
        Duration::from_millis(u64::from(ms))
    }

    fn error_response(&self, e: SccError) -> Response {
        match e {
            SccError::DeadlineExceeded => {
                self.stats.deadline_miss();
                Response::DeadlineExceeded
            }
            SccError::Overloaded { retry_after_ms } => Response::Overloaded {
                // The wire carries u32 milliseconds; saturate rather
                // than wrap a pathological hint.
                retry_after_ms: u32::try_from(retry_after_ms).unwrap_or(u32::MAX),
            },
            other => Response::Internal {
                message: other.to_string(),
            },
        }
    }

    /// The admin rebuild: full recompute over the engine's current
    /// graph (base + pending deltas), then swap the epoch. Failure of
    /// any kind — a typed pipeline error, or a panic from an injected
    /// `serve-swap`/pipeline fault — leaves the previous epoch serving
    /// and is reported as a typed `RecomputeFailed`.
    fn recompute(&self) -> Response {
        let Some(_busy) = self.claim_write() else {
            return Response::Overloaded {
                retry_after_ms: self.config.retry_after_ms,
            };
        };
        let mut engine = self.engine.lock();
        // recovery: the rebuild runs the full parallel pipeline plus the
        // epoch swap; an escaped panic (injected serve-swap fault, or a
        // worker panic under PanicPolicy::Fail) must degrade to a typed
        // RecomputeFailed with the old epoch still serving, never take
        // the daemon down.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let guard = RunGuard::new();
            engine.rebuild(&guard)?;
            let snapshot = engine.snapshot(&guard)?;
            Ok::<u64, SccError>(self.cell.publish(snapshot))
        }));
        match outcome {
            Ok(Ok(epoch)) => {
                self.stats.recompute_ok();
                Response::Recomputed { epoch }
            }
            Ok(Err(e)) => {
                self.stats.recompute_failed();
                Response::RecomputeFailed {
                    message: e.to_string(),
                }
            }
            Err(panic_payload) => {
                // The rebuild may have died anywhere; demand a healing
                // rebuild before the engine answers another write.
                engine.poison();
                self.stats.recompute_failed();
                Response::RecomputeFailed {
                    message: fault::panic_text(panic_payload.as_ref()),
                }
            }
        }
    }

    fn stats_reply(&self) -> Response {
        let snapshot = self.cell.load();
        let mut reply = self.stats.sample();
        reply.epoch = snapshot.epoch();
        // Graph dimensions come from the published snapshot, not the
        // engine — stats must never block behind the engine mutex.
        reply.num_nodes = snapshot.value().num_nodes() as u64;
        reply.num_edges = snapshot.value().num_edges() as u64;
        reply.num_components = snapshot.value().num_components() as u64;
        // ordering: Relaxed — diagnostic sample of the write gate.
        reply.mutating = self.write_busy.load(Ordering::Relaxed);
        Response::Stats(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cycle_graph() -> ServedGraph {
        ServedGraph::Raw(CsrGraph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)],
        ))
    }

    fn server() -> Arc<Server> {
        Server::new(two_cycle_graph(), ServeConfig::default()).unwrap()
    }

    /// An inert armed session: tests that hit `serve-swap`/`serve-frame`
    /// points without wanting a fault hold one, serializing them with
    /// the genuinely-armed tests so a single-shot plan is never consumed
    /// by the wrong test (the chaos-battery doctrine, in miniature).
    fn quiesce() -> fault::FaultGuard {
        fault::arm(fault::FaultPlan {
            site: Some("serve-test-inert"),
            nth: 0,
            kind: fault::FaultKind::Panic,
            repeat: false,
        })
    }

    #[test]
    fn starts_at_epoch_zero_with_answers() {
        let _quiet = quiesce();
        let s = server();
        assert_eq!(s.epoch(), 0);
        assert_eq!(
            s.handle_request(&Request::SameScc {
                u: 0,
                v: 2,
                deadline_ms: 0
            }),
            Response::Bool(true)
        );
        assert_eq!(
            s.handle_request(&Request::SccId {
                u: 99,
                deadline_ms: 0
            }),
            Response::OutOfRange
        );
        assert_eq!(
            s.handle_request(&Request::CondReach {
                u: 0,
                v: 5,
                deadline_ms: 0
            }),
            Response::Bool(true)
        );
        assert_eq!(
            s.handle_request(&Request::CondReach {
                u: 5,
                v: 0,
                deadline_ms: 0
            }),
            Response::Bool(false)
        );
        assert_eq!(s.handle_request(&Request::Ping), Response::Pong);
    }

    #[test]
    fn recompute_bumps_epoch_and_stats() {
        let _quiet = quiesce();
        let s = server();
        match s.handle_request(&Request::Recompute) {
            Response::Recomputed { epoch } => assert_eq!(epoch, 1),
            other => panic!("wrong response: {other:?}"),
        }
        assert_eq!(s.epoch(), 1);
        match s.handle_request(&Request::Stats) {
            Response::Stats(r) => {
                assert_eq!(r.epoch, 1);
                assert_eq!(r.recomputes_ok, 1);
                assert_eq!(r.num_nodes, 6);
                assert_eq!(r.num_components, 3); // {0,1,2} {3,4} {5}
                assert!(!r.stale);
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn injected_swap_fault_degrades_to_stale_old_epoch() {
        let _armed = fault::arm(fault::FaultPlan {
            site: Some(fault::SERVE_SWAP),
            nth: 0,
            kind: fault::FaultKind::Panic,
            repeat: false,
        });
        let s = server();
        match s.handle_request(&Request::Recompute) {
            Response::RecomputeFailed { message } => {
                assert!(message.contains("injected fault"), "got {message:?}")
            }
            other => panic!("wrong response: {other:?}"),
        }
        assert_eq!(s.epoch(), 0, "failed swap must leave the old epoch serving");
        match s.handle_request(&Request::Stats) {
            Response::Stats(r) => {
                assert!(r.stale);
                assert_eq!(r.recomputes_failed, 1);
            }
            other => panic!("wrong response: {other:?}"),
        }
        // The site disarmed (repeat: false) — the next recompute heals.
        match s.handle_request(&Request::Recompute) {
            Response::Recomputed { epoch } => assert_eq!(epoch, 1),
            other => panic!("wrong response: {other:?}"),
        }
        match s.handle_request(&Request::Stats) {
            Response::Stats(r) => assert!(!r.stale, "success clears staleness"),
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_is_typed() {
        let _armed = fault::arm(fault::FaultPlan {
            site: Some(fault::SERVE_FRAME),
            nth: 0,
            kind: fault::FaultKind::Delay(Duration::from_millis(30)),
            repeat: false,
        });
        let s = server();
        assert_eq!(
            s.handle_request(&Request::CondReach {
                u: 0,
                v: 5,
                deadline_ms: 1
            }),
            Response::DeadlineExceeded
        );
        match s.handle_request(&Request::Stats) {
            Response::Stats(r) => assert_eq!(r.deadline_misses, 1),
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn concurrent_writes_are_shed_not_queued() {
        let _quiet = quiesce();
        let s = server();
        // Hold the write gate as an in-flight write would.
        assert!(s
            .write_busy
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok());
        for req in [
            Request::Recompute,
            Request::Compact,
            Request::InsertEdge {
                u: 0,
                v: 5,
                deadline_ms: 0,
            },
        ] {
            match s.handle_request(&req) {
                Response::Overloaded { retry_after_ms } => {
                    assert_eq!(retry_after_ms, s.config.retry_after_ms)
                }
                other => panic!("wrong response to {req:?}: {other:?}"),
            }
        }
        // A held write gate is what the stats `mutating` flag reports.
        match s.handle_request(&Request::Stats) {
            Response::Stats(r) => assert!(r.mutating),
            other => panic!("wrong response: {other:?}"),
        }
        // ordering: Relaxed — test cleanup of the flag it set above.
        s.write_busy.store(false, Ordering::Relaxed);
        assert!(matches!(
            s.handle_request(&Request::Recompute),
            Response::Recomputed { .. }
        ));
    }

    #[test]
    fn out_of_range_mutation_is_typed_and_does_not_poison() {
        let _quiet = quiesce();
        let s = server();
        for req in [
            Request::InsertEdge {
                u: 0,
                v: 6,
                deadline_ms: 0,
            },
            Request::DeleteEdge {
                u: 6,
                v: 0,
                deadline_ms: 0,
            },
            Request::BatchMutate {
                deadline_ms: 0,
                ops: vec![
                    MutOp {
                        insert: true,
                        u: 0,
                        v: 1,
                    },
                    MutOp {
                        insert: true,
                        u: 0,
                        v: 6,
                    },
                ],
            },
        ] {
            assert_eq!(
                s.handle_request(&req),
                Response::OutOfRange,
                "{req:?} must be rejected before touching the engine"
            );
        }
        // No epoch burned, no failure counted, engine healthy.
        assert_eq!(s.epoch(), 0);
        match s.handle_request(&Request::Stats) {
            Response::Stats(r) => assert_eq!(r.mutations_failed, 0),
            other => panic!("wrong response: {other:?}"),
        }
        assert!(matches!(
            s.handle_request(&Request::InsertEdge {
                u: 5,
                v: 0,
                deadline_ms: 0,
            }),
            Response::Mutated(_)
        ));
    }

    #[test]
    fn insert_edge_merges_and_publishes_one_epoch() {
        let _quiet = quiesce();
        let s = server();
        // two_cycle_graph: {0,1,2} {3,4} {5}; 5 -> 0 closes the ring
        // through 0..2 -> 3 -> 4 -> 5.
        match s.handle_request(&Request::InsertEdge {
            u: 5,
            v: 0,
            deadline_ms: 0,
        }) {
            Response::Mutated(m) => {
                assert_eq!(m.epoch, 1, "one mutation = one epoch");
                assert_eq!(m.applied, 1);
                assert_eq!(m.merges, 1);
                assert_eq!(m.num_components, 1);
                assert!(m.pending_deltas >= 1);
            }
            other => panic!("wrong response: {other:?}"),
        }
        // Queries answer from the repaired epoch.
        assert_eq!(
            s.handle_request(&Request::SameScc {
                u: 0,
                v: 5,
                deadline_ms: 0
            }),
            Response::Bool(true)
        );
        match s.handle_request(&Request::Stats) {
            Response::Stats(r) => {
                assert_eq!(r.mutations_ok, 1);
                assert_eq!(r.epoch, 1);
                assert_eq!(r.num_edges, 8, "snapshot reflects the mutated graph");
                assert!(!r.mutating);
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn batch_publishes_a_single_epoch_and_counts_noops() {
        let _quiet = quiesce();
        let s = server();
        let ops = vec![
            MutOp {
                insert: true,
                u: 5,
                v: 0,
            },
            MutOp {
                insert: true,
                u: 5,
                v: 0,
            }, // duplicate: noop
            MutOp {
                insert: false,
                u: 4,
                v: 5,
            },
            MutOp {
                insert: false,
                u: 1,
                v: 5,
            }, // absent: noop
        ];
        match s.handle_request(&Request::BatchMutate {
            deadline_ms: 0,
            ops,
        }) {
            Response::Mutated(m) => {
                assert_eq!(m.epoch, 1, "whole batch = one epoch");
                assert_eq!(m.applied, 2);
                assert_eq!(m.noops, 2);
            }
            other => panic!("wrong response: {other:?}"),
        }
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn delete_splits_and_compact_folds() {
        let _quiet = quiesce();
        let s = server();
        // Break the {3,4} 2-cycle.
        match s.handle_request(&Request::DeleteEdge {
            u: 4,
            v: 3,
            deadline_ms: 0,
        }) {
            Response::Mutated(m) => {
                assert_eq!(m.applied, 1);
                assert_eq!(m.splits, 1);
                assert_eq!(m.num_components, 4);
            }
            other => panic!("wrong response: {other:?}"),
        }
        assert_eq!(
            s.handle_request(&Request::SameScc {
                u: 3,
                v: 4,
                deadline_ms: 0
            }),
            Response::Bool(false)
        );
        match s.handle_request(&Request::Compact) {
            Response::Compacted { epoch, folded } => {
                assert_eq!(epoch, 1, "compaction does not publish an epoch");
                assert_eq!(folded, 1);
            }
            other => panic!("wrong response: {other:?}"),
        }
        match s.handle_request(&Request::Stats) {
            Response::Stats(r) => {
                assert_eq!(r.compactions, 1);
                assert_eq!(r.pending_deltas, 0);
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn killed_merge_keeps_old_epoch_serving_and_heals() {
        let _armed = fault::arm(fault::FaultPlan {
            site: Some(fault::INCR_MERGE),
            nth: 0,
            kind: fault::FaultKind::Panic,
            repeat: false,
        });
        let s = server();
        match s.handle_request(&Request::InsertEdge {
            u: 5,
            v: 0,
            deadline_ms: 0,
        }) {
            Response::MutateFailed { message } => {
                assert!(message.contains("injected fault"), "got {message:?}")
            }
            other => panic!("wrong response: {other:?}"),
        }
        assert_eq!(s.epoch(), 0, "failed write must leave the old epoch");
        // The old epoch still answers with the pre-mutation partition.
        assert_eq!(
            s.handle_request(&Request::SameScc {
                u: 0,
                v: 5,
                deadline_ms: 0
            }),
            Response::Bool(false)
        );
        // The site disarmed (repeat: false) — the next write heals the
        // poisoned engine by rebuild and serves the repaired partition.
        match s.handle_request(&Request::InsertEdge {
            u: 5,
            v: 0,
            deadline_ms: 0,
        }) {
            // The killed write already inserted the edge into the graph,
            // so the retry is a no-op mutation — but the healing rebuild
            // folds the edge into the published partition.
            Response::Mutated(m) => assert_eq!(m.num_components, 1),
            other => panic!("wrong response: {other:?}"),
        }
        assert_eq!(
            s.handle_request(&Request::SameScc {
                u: 0,
                v: 5,
                deadline_ms: 0
            }),
            Response::Bool(true)
        );
        match s.handle_request(&Request::Stats) {
            Response::Stats(r) => {
                assert_eq!(r.mutations_failed, 1);
                assert_eq!(r.mutations_ok, 1);
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn killed_compaction_loses_only_the_rebuild_work() {
        let _armed = fault::arm(fault::FaultPlan {
            site: Some(fault::DELTA_COMPACT),
            nth: 0,
            kind: fault::FaultKind::Panic,
            repeat: false,
        });
        let s = server();
        match s.handle_request(&Request::InsertEdge {
            u: 5,
            v: 0,
            deadline_ms: 0,
        }) {
            Response::Mutated(m) => assert_eq!(m.pending_deltas, 1),
            other => panic!("wrong response: {other:?}"),
        }
        match s.handle_request(&Request::Compact) {
            Response::MutateFailed { message } => {
                assert!(message.contains("injected fault"), "got {message:?}")
            }
            other => panic!("wrong response: {other:?}"),
        }
        // The overlay still answers; the next compact succeeds.
        assert_eq!(
            s.handle_request(&Request::SameScc {
                u: 0,
                v: 5,
                deadline_ms: 0
            }),
            Response::Bool(true)
        );
        match s.handle_request(&Request::Compact) {
            Response::Compacted { folded, .. } => assert_eq!(folded, 1),
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn compressed_backend_mutates_identically() {
        let _quiet = quiesce();
        let raw = CsrGraph::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)]);
        let z = CompressedCsr::from_csr(&raw);
        let s = Server::new(ServedGraph::Compressed(z), ServeConfig::default()).unwrap();
        match s.handle_request(&Request::InsertEdge {
            u: 4,
            v: 0,
            deadline_ms: 0,
        }) {
            Response::Mutated(m) => {
                assert_eq!(m.merges, 1);
                assert_eq!(m.num_components, 1);
            }
            other => panic!("wrong response: {other:?}"),
        }
        match s.handle_request(&Request::Compact) {
            Response::Compacted { folded, .. } => assert_eq!(folded, 1),
            other => panic!("wrong response: {other:?}"),
        }
        assert_eq!(
            s.handle_request(&Request::SameScc {
                u: 0,
                v: 4,
                deadline_ms: 0
            }),
            Response::Bool(true)
        );
    }

    #[test]
    fn compressed_backend_serves_identically() {
        let _quiet = quiesce();
        let raw = CsrGraph::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)]);
        let z = CompressedCsr::from_csr(&raw);
        let s = Server::new(ServedGraph::Compressed(z), ServeConfig::default()).unwrap();
        assert_eq!(
            s.handle_request(&Request::SameScc {
                u: 0,
                v: 1,
                deadline_ms: 0
            }),
            Response::Bool(true)
        );
        assert_eq!(
            s.handle_request(&Request::CondReach {
                u: 0,
                v: 4,
                deadline_ms: 0
            }),
            Response::Bool(true)
        );
    }
}
