//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use swscc_graph::bfs::{bfs_levels, par_bfs_levels, undirected_bfs_levels, Direction, UNREACHED};
use swscc_graph::stats::SizeHistogram;
use swscc_graph::{CsrGraph, GraphBuilder};

fn arb_edges(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (1..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..5 * n).prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #[test]
    fn csr_preserves_edge_multiset((n, edges) in arb_edges(60)) {
        let g = CsrGraph::from_edges(n, &edges);
        let mut want = edges.clone();
        want.sort_unstable();
        let mut got: Vec<_> = g.edges().collect();
        got.sort_unstable();
        prop_assert_eq!(want, got);
    }

    #[test]
    fn in_degree_sum_equals_out_degree_sum((n, edges) in arb_edges(60)) {
        let g = CsrGraph::from_edges(n, &edges);
        let out: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let inn: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out, inn);
        prop_assert_eq!(out, edges.len());
    }

    #[test]
    fn builder_dedup_is_set_semantics((n, edges) in arb_edges(50)) {
        let mut b = GraphBuilder::new(n);
        b.extend(edges.iter().copied());
        let g = b.build();
        use std::collections::BTreeSet;
        let want: BTreeSet<_> = edges.iter().copied().filter(|&(u, v)| u != v).collect();
        let got: BTreeSet<_> = g.edges().collect();
        prop_assert_eq!(want, got);
    }

    #[test]
    fn transpose_involution((n, edges) in arb_edges(50)) {
        let g = CsrGraph::from_edges(n, &edges);
        let tt = g.transpose().transpose();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = tt.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn bfs_levels_differ_by_at_most_one_along_edges((n, edges) in arb_edges(50)) {
        let g = CsrGraph::from_edges(n, &edges);
        let lv = bfs_levels(&g, 0, Direction::Forward);
        for (u, v) in g.edges() {
            if lv[u as usize] != UNREACHED {
                prop_assert!(lv[v as usize] != UNREACHED);
                prop_assert!(lv[v as usize] <= lv[u as usize] + 1,
                    "edge {}->{} levels {} -> {}", u, v, lv[u as usize], lv[v as usize]);
            }
        }
    }

    #[test]
    fn par_bfs_equals_seq_bfs((n, edges) in arb_edges(50)) {
        let g = CsrGraph::from_edges(n, &edges);
        for dir in [Direction::Forward, Direction::Backward] {
            prop_assert_eq!(bfs_levels(&g, 0, dir), par_bfs_levels(&g, 0, dir));
        }
    }

    #[test]
    fn undirected_bfs_reaches_superset((n, edges) in arb_edges(50)) {
        let g = CsrGraph::from_edges(n, &edges);
        let directed = bfs_levels(&g, 0, Direction::Forward);
        let undirected = undirected_bfs_levels(&g, 0);
        for v in 0..n {
            if directed[v] != UNREACHED {
                prop_assert!(undirected[v] != UNREACHED);
                prop_assert!(undirected[v] <= directed[v]);
            }
        }
    }

    #[test]
    fn induced_subgraph_edges_are_subset((n, edges) in arb_edges(40), keep_mask in proptest::collection::vec(any::<bool>(), 40)) {
        let g = CsrGraph::from_edges(n, &edges);
        let nodes: Vec<u32> = (0..n as u32).filter(|&v| keep_mask[v as usize % keep_mask.len()]).collect();
        let sub = g.induced_subgraph(&nodes);
        prop_assert_eq!(sub.num_nodes(), nodes.len());
        for (lu, lv) in sub.edges() {
            prop_assert!(g.has_edge(nodes[lu as usize], nodes[lv as usize]));
        }
        // edge count equals internal-edge count of the original
        let internal = g.edges().filter(|&(u, v)| {
            nodes.binary_search(&u).is_ok() && nodes.binary_search(&v).is_ok()
        }).count();
        prop_assert_eq!(sub.num_edges(), internal);
    }

    #[test]
    fn histogram_accounts_for_every_element(sizes in proptest::collection::vec(1usize..50, 0..60)) {
        let h = SizeHistogram::from_sizes(&sizes);
        prop_assert_eq!(h.num_groups(), sizes.len());
        prop_assert_eq!(h.num_elements(), sizes.iter().sum::<usize>());
        let binned: usize = h.log_binned().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(binned, sizes.len());
    }

    #[test]
    fn histogram_from_assignment_matches_sizes(assignment in proptest::collection::vec(0u32..10, 1..80)) {
        let h = SizeHistogram::from_assignment(&assignment);
        prop_assert_eq!(h.num_elements(), assignment.len());
        use std::collections::HashMap;
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &c in &assignment {
            *counts.entry(c).or_default() += 1;
        }
        prop_assert_eq!(h.num_groups(), counts.len());
        for (_, size) in counts {
            prop_assert!(h.count_of(size) >= 1);
        }
    }
}

// ---------------------------------------------------------------------------
// Binary-format robustness: corrupted bytes must never panic the loader.
// ---------------------------------------------------------------------------

/// A byte-level corruption applied to a serialized graph.
#[derive(Clone, Debug)]
enum Corruption {
    FlipByte { pos: usize, xor: u8 },
    Truncate { keep: usize },
    Append { bytes: Vec<u8> },
}

fn arb_corruption() -> impl Strategy<Value = Corruption> {
    // No prop_oneof in the offline shim: pick the variant by discriminant.
    (
        0u8..3,
        any::<usize>(),
        1u8..=255,
        proptest::collection::vec(any::<u8>(), 1..16),
    )
        .prop_map(|(kind, pos, xor, bytes)| match kind {
            0 => Corruption::FlipByte { pos, xor },
            1 => Corruption::Truncate { keep: pos },
            _ => Corruption::Append { bytes },
        })
}

proptest! {
    /// Uncorrupted binary round-trip always succeeds and validates.
    #[test]
    fn binary_round_trip_validates((n, edges) in arb_edges(60)) {
        let g = CsrGraph::from_edges(n, &edges);
        let mut buf = Vec::new();
        swscc_graph::io::write_binary(&g, &mut buf).unwrap();
        let g2 = swscc_graph::io::read_binary(buf.as_slice()).expect("clean bytes load");
        g2.validate().expect("loaded graph validates");
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
    }

    /// Arbitrarily corrupted bytes either load to a *valid* graph (the
    /// corruption may be semantically harmless, e.g. flipping one edge
    /// endpoint to another in-range id) or fail with a typed error —
    /// never a panic, never an invalid CsrGraph.
    #[test]
    fn corrupted_binary_never_panics(
        (n, edges) in arb_edges(40),
        corruption in arb_corruption(),
    ) {
        let g = CsrGraph::from_edges(n, &edges);
        let mut buf = Vec::new();
        swscc_graph::io::write_binary(&g, &mut buf).unwrap();
        match corruption {
            Corruption::FlipByte { pos, xor } => {
                let pos = pos % buf.len();
                buf[pos] ^= xor;
            }
            Corruption::Truncate { keep } => {
                let keep = keep % (buf.len() + 1);
                buf.truncate(keep);
            }
            Corruption::Append { bytes } => buf.extend_from_slice(&bytes),
        }
        if let Ok(loaded) = swscc_graph::io::read_binary(buf.as_slice()) {
            loaded.validate().expect("accepted graph must satisfy CSR invariants");
        }
    }
}
