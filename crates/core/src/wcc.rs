//! Par-WCC (Algorithm 7): parallel weakly-connected-component detection.
//!
//! §3.3: after the giant SCC is peeled, the residue is a sea of small
//! mutually-disconnected clusters, but the recursive FW-BW phase sees only
//! two colors (FW set / BW set) and serializes. Par-WCC splits each
//! partition into its weakly connected components — "a maximal group of
//! nodes that are mutually reachable by converting directed edges to
//! undirected edges" — assigns every WCC a fresh color, and enqueues each
//! as a separate work item, lifting the initial task count from O(1) to the
//! paper's observed ~10,000.
//!
//! Implementation: min-label propagation with pointer-jumping shortcuts
//! over the alive nodes, exactly the paper's `WCC(n)` head-node scheme.
//! One deliberate fix: Algorithm 7 as printed pulls labels only from
//! out-neighbors, which does not converge to *weak* connectivity (a label
//! can never cross an edge against its direction); since the paper defines
//! WCC over undirected edges and relies on that semantics, the propagation
//! here scans in-neighbors too.
//!
//! The propagation runs on the unified
//! [`swscc_graph::traverse::EdgeMap`] kernel over
//! [`Adjacency::Undirected`]: the frontier holds the nodes whose label
//! changed last round, the claim is a fetch-min on the label array
//! (deduplicated per round by a [`ClaimSet`]), and between kernel steps a
//! pointer-jumping sweep over the alive nodes shortcuts label chains —
//! nodes the sweep improves re-enter the frontier. Frontier storage
//! reuses its buffers across rounds instead of collecting a fresh vector
//! per round.

use crate::state::{AlgoState, Color};
use rayon::prelude::*;
use swscc_graph::bfs::Direction;
use swscc_graph::traverse::{Adjacency, EdgeMap, EdgeMapOps, TraversalConfig};
use swscc_graph::{GraphView, NodeId};
use swscc_parallel::ClaimSet;
use swscc_sync::atomic::{AtomicU32, Ordering};

/// Outcome of a Par-WCC run.
#[derive(Debug)]
pub struct WccOutcome {
    /// One entry per weakly connected component found among the alive
    /// nodes: the fresh color assigned and the member list, ready to become
    /// work-queue tasks.
    pub groups: Vec<(Color, Vec<NodeId>)>,
    /// Label-propagation iterations until fixpoint — the quantity that
    /// blows up on large-diameter graphs ("the algorithm requires a large
    /// number of iterations for convergence" on CA-road, §5).
    pub iterations: usize,
}

/// The Par-WCC claim protocol: push the source's label to the destination
/// with a fetch-min, restricted to same-color (same-partition) alive
/// pairs. A node enters the next frontier at most once per round — the
/// `queued` claim set dedups concurrent enqueue attempts; the driver
/// releases a node's bit when it leaves the frontier so later label
/// improvements can re-activate it.
struct MinLabelOps<'a, 'g, G: GraphView> {
    state: &'a AlgoState<'g, G>,
    labels: &'a [AtomicU32],
    queued: ClaimSet,
}

impl<G: GraphView> EdgeMapOps for MinLabelOps<'_, '_, G> {
    #[inline]
    fn claim(&self, src: NodeId, dst: NodeId, _depth: u32) -> bool {
        if src == dst || self.state.color(dst) != self.state.color(src) {
            return false;
        }
        // ordering: monotone fetch_min convergence — labels only ever
        // decrease, so a stale read can at worst skip an improvement this
        // round that the fixpoint loop retries next round; the fetch_min
        // itself is atomic so no decrease is lost. Final labels are
        // published to the grouping pass by the kernel's scope joins.
        let l = self.labels[src as usize].load(Ordering::Relaxed);
        if l >= self.labels[dst as usize].load(Ordering::Relaxed) {
            return false;
        }
        self.labels[dst as usize].fetch_min(l, Ordering::Relaxed);
        self.queued.claim(dst as usize)
    }

    #[inline]
    fn candidate(&self, _v: NodeId) -> bool {
        // Label propagation has no "visited" notion: every alive node
        // stays claimable whenever its label can still decrease.
        true
    }
}

/// Runs the Par-WCC implementation selected by
/// [`SccConfig::wcc_impl`](crate::SccConfig::wcc_impl) — the single
/// dispatch point consumed by the pipeline engine's Wcc kernel (and any
/// other caller that should honour the config knob rather than hard-code
/// an implementation).
pub fn run_wcc<G: GraphView>(
    state: &AlgoState<'_, G>,
    cfg: &crate::config::SccConfig,
) -> WccOutcome {
    match cfg.wcc_impl {
        crate::config::WccImpl::LabelPropagation => par_wcc(state),
        crate::config::WccImpl::UnionFind => par_wcc_unionfind(state),
    }
}

/// Runs Par-WCC over all alive nodes, respecting the current coloring
/// (labels never cross between different colors). Re-colors every alive
/// node with its WCC's fresh color and returns the groups.
pub fn par_wcc<G: GraphView>(state: &AlgoState<'_, G>) -> WccOutcome {
    let n = state.num_nodes();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    // Alive-list build over the live set: O(|residue|) once compacted.
    let alive: Vec<NodeId> = state.collect_alive();

    let ops = MinLabelOps {
        state,
        labels: &labels,
        queued: ClaimSet::new(n),
    };
    // Bottom-up sweeps are meaningless for label propagation (every node
    // is a permanent candidate), so the kernel runs pure top-down.
    let mut em = EdgeMap::new(
        state.g,
        Adjacency::Undirected,
        TraversalConfig {
            direction_optimizing: false,
            ..Default::default()
        },
    );
    em.extend(&alive);

    // Watchdog: without pointer jumping the propagation needs at most
    // diameter ≤ n rounds; jumps only shorten that. The factor-scaled
    // bound turns a lost-update bug (which would spin forever) into a
    // clean NonConvergence abort.
    let mut watchdog = state.watchdog("par-wcc", n + 1);
    let mut iterations = 0usize;
    loop {
        if watchdog.check().is_some() {
            // Aborted (cancel / deadline / trip): labels are mid-flight,
            // so the groups built below are meaningless — the driver must
            // check the interrupt before using them.
            break;
        }
        swscc_sync::fault::point("wcc-round");
        iterations += 1;
        // Dequeue the current frontier: clear its bits so a node whose
        // label drops again during this round re-enters the next one.
        for &v in em.frontier() {
            ops.queued.release(v as usize);
        }
        // Push round: changed nodes push their labels to same-color
        // neighbors in both edge directions (undirected semantics).
        em.step(&ops);
        // Shortcutting (pointer jumping): WCC(n) <- WCC(WCC(n)). A jump
        // target is always a same-group node (labels only ever take
        // values of group members), and improved nodes must re-enter the
        // frontier so neighbors observe their new label.
        let jumped: Vec<NodeId> = alive
            .par_iter()
            .copied()
            .filter(|&v| {
                // ordering: same monotone fetch_min argument as the push
                // round — stale jumps are retried, improvements are never
                // lost, the round barrier publishes.
                let l = labels[v as usize].load(Ordering::Relaxed);
                let ll = labels[l as usize].load(Ordering::Relaxed);
                if ll < l {
                    labels[v as usize].fetch_min(ll, Ordering::Relaxed);
                    ops.queued.claim(v as usize)
                } else {
                    false
                }
            })
            .collect();
        em.extend(&jumped);
        if em.frontier().is_empty() {
            break;
        }
    }

    // Group members by root label, assign a fresh color per group.
    // ordering: reads after the fixpoint loop's final barrier (the scope
    // joins inside step/par_iter published every write).
    let mut pairs: Vec<(u32, NodeId)> = alive
        .par_iter()
        .map(|&v| (labels[v as usize].load(Ordering::Relaxed), v))
        .collect();
    pairs.par_sort_unstable();
    let mut groups: Vec<(Color, Vec<NodeId>)> = Vec::new();
    let mut current_root = u32::MAX;
    for (root, v) in pairs {
        if root != current_root {
            current_root = root;
            groups.push((state.alloc_color(), Vec::new()));
        }
        groups.last_mut().expect("just pushed").1.push(v);
    }
    for (c, members) in &groups {
        for &v in members {
            state.set_color(v, *c);
        }
    }
    WccOutcome { groups, iterations }
}

/// Par-WCC via concurrent union-find (an Afforest-style alternative to the
/// paper's label propagation).
///
/// §5 observes that the label-propagation WCC "requires a large number of
/// iterations for convergence when applied on non-small-world graphs" —
/// the CA-road instance degrades Method 2 for exactly this reason. A
/// lock-free disjoint-set forest removes the diameter dependence: each
/// edge costs amortized near-constant work regardless of component shape.
/// Selectable via [`crate::config::WccImpl`]; the `ablation_wcc` harness
/// compares the two on both graph classes.
pub fn par_wcc_unionfind<G: GraphView>(state: &AlgoState<'_, G>) -> WccOutcome {
    let n = state.num_nodes();
    let parents: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let alive: Vec<NodeId> = state.collect_alive();

    // Union every same-color alive edge. Out-edges suffice: (u, v) is seen
    // from u's side, and weak connectivity is symmetric.
    alive.par_iter().for_each(|&u| {
        let cu = state.color(u);
        state.g.for_each_neighbor(Direction::Forward, u, |v| {
            if v != u && state.color(v) == cu {
                union(&parents, u, v);
            }
        });
    });

    // Group by root (flatten to full path compression first).
    let mut pairs: Vec<(u32, NodeId)> = alive.par_iter().map(|&v| (find(&parents, v), v)).collect();
    pairs.par_sort_unstable();
    let mut groups: Vec<(Color, Vec<NodeId>)> = Vec::new();
    let mut current_root = u32::MAX;
    for (root, v) in pairs {
        if root != current_root {
            current_root = root;
            groups.push((state.alloc_color(), Vec::new()));
        }
        groups.last_mut().expect("just pushed").1.push(v);
    }
    for (c, members) in &groups {
        for &v in members {
            state.set_color(v, *c);
        }
    }
    WccOutcome {
        groups,
        iterations: 1, // edge-parallel, no global iteration count
    }
}

/// Lock-free find with path halving.
fn find(parents: &[AtomicU32], mut x: NodeId) -> u32 {
    loop {
        // ordering: parent pointers form a monotone union-find forest —
        // every write moves a pointer strictly toward a smaller root, so
        // any stale read still lands inside the same tree and the loop
        // re-reads until it reaches a fixpoint; the path-halving CAS is
        // a pure hint whose failure is ignored. Final structure is
        // published by the scope join before readers consume roots.
        let p = parents[x as usize].load(Ordering::Relaxed);
        if p == x {
            return x;
        }
        let gp = parents[p as usize].load(Ordering::Relaxed);
        if gp != p {
            // halve the path; failure just means someone else improved it
            let _ =
                parents[x as usize].compare_exchange(p, gp, Ordering::Relaxed, Ordering::Relaxed);
        }
        x = p;
    }
}

/// Lock-free union linking the larger root under the smaller (so group
/// roots coincide with min node ids, like the label-propagation variant).
fn union(parents: &[AtomicU32], a: NodeId, b: NodeId) {
    let mut a = a;
    let mut b = b;
    loop {
        let ra = find(parents, a);
        let rb = find(parents, b);
        if ra == rb {
            return;
        }
        let (hi, lo) = if ra < rb { (rb, ra) } else { (ra, rb) };
        // ordering: link-by-CAS carries correctness via atomicity alone
        // (only a root can be linked, and exactly one linker wins); the
        // no-payload argument of `find` applies.
        if parents[hi as usize]
            .compare_exchange(hi, lo, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        // lost a race: retry from the (possibly moved) roots
        a = hi;
        b = lo;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swscc_graph::CsrGraph;

    #[test]
    fn splits_disconnected_clusters() {
        // 0->1, 2->3, isolated 4
        let g = CsrGraph::from_edges(5, &[(0, 1), (2, 3)]);
        let s = AlgoState::new(&g);
        let out = par_wcc(&s);
        assert_eq!(out.groups.len(), 3);
        let sizes: Vec<usize> = out.groups.iter().map(|(_, m)| m.len()).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
        // fresh distinct colors assigned
        assert_ne!(s.color(0), s.color(2));
        assert_eq!(s.color(0), s.color(1));
    }

    #[test]
    fn direction_is_ignored() {
        // 0 -> 1 <- 2: weakly one component even though 0 and 2 are
        // mutually unreachable.
        let g = CsrGraph::from_edges(3, &[(0, 1), (2, 1)]);
        let s = AlgoState::new(&g);
        let out = par_wcc(&s);
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].1, vec![0, 1, 2]);
    }

    #[test]
    fn marked_nodes_are_invisible() {
        // chain 0 - 1 - 2; resolving 1 splits the weak component.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let s = AlgoState::new(&g);
        s.resolve_singleton(1);
        let out = par_wcc(&s);
        assert_eq!(out.groups.len(), 2);
    }

    #[test]
    fn respects_existing_colors() {
        // 0 - 1 - 2 - 3 all weakly connected, but {0,1} and {2,3} are in
        // different partitions: the 1-2 edge must not merge them.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = AlgoState::new(&g);
        let c = s.alloc_color();
        s.set_color(2, c);
        s.set_color(3, c);
        let out = par_wcc(&s);
        assert_eq!(out.groups.len(), 2);
    }

    #[test]
    fn long_path_converges() {
        // Pointer jumping should converge in O(log n)-ish label rounds, and
        // the outcome must be a single group regardless.
        let n = 10_000u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let s = AlgoState::new(&g);
        let out = par_wcc(&s);
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].1.len(), n as usize);
        assert!(
            out.iterations < 100,
            "pointer jumping failed to accelerate: {} iterations",
            out.iterations
        );
    }

    #[test]
    fn empty_state() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = AlgoState::new(&g);
        let out = par_wcc(&s);
        assert!(out.groups.is_empty());
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn groups_cover_alive_exactly() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 0), (2, 3), (4, 5)]);
        let s = AlgoState::new(&g);
        s.resolve_singleton(5);
        let out = par_wcc(&s);
        let mut all: Vec<NodeId> = out.groups.iter().flat_map(|(_, m)| m.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    // --- union-find variant ------------------------------------------------

    fn groups_of(out: &WccOutcome) -> Vec<Vec<NodeId>> {
        let mut gs: Vec<Vec<NodeId>> = out.groups.iter().map(|(_, m)| m.clone()).collect();
        for g in &mut gs {
            g.sort_unstable();
        }
        gs.sort();
        gs
    }

    #[test]
    fn unionfind_matches_label_propagation() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(89);
        for _ in 0..15 {
            let n = rng.random_range(1..150usize);
            let m = rng.random_range(0..3 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            let s1 = AlgoState::new(&g);
            let a = par_wcc(&s1);
            let s2 = AlgoState::new(&g);
            let b = par_wcc_unionfind(&s2);
            assert_eq!(groups_of(&a), groups_of(&b));
        }
    }

    #[test]
    fn unionfind_respects_colors() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = AlgoState::new(&g);
        let c = s.alloc_color();
        s.set_color(2, c);
        s.set_color(3, c);
        let out = par_wcc_unionfind(&s);
        assert_eq!(out.groups.len(), 2);
    }

    #[test]
    fn unionfind_long_path_single_group() {
        let n = 20_000u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let s = AlgoState::new(&g);
        let out = par_wcc_unionfind(&s);
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].1.len(), n as usize);
    }

    #[test]
    fn unionfind_marked_nodes_split() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let s = AlgoState::new(&g);
        s.resolve_singleton(1);
        let out = par_wcc_unionfind(&s);
        assert_eq!(out.groups.len(), 2);
    }
}
