//! Typed failure surface of the checked driver entry points.
//!
//! The legacy `*_scc` functions panic on internal failure and run without
//! bound. The `*_scc_checked` drivers (and [`crate::run_checked`]) instead
//! return an [`SccError`] and accept a [`RunGuard`] — the caller-facing
//! handle bundling a cooperative cancellation token and an optional
//! wall-clock deadline, both polled by every kernel loop at superstep /
//! round granularity.
//!
//! A `RunGuard` cancels the run when dropped, so a caller that gives up on
//! a result (e.g. a timeout path that stops waiting) automatically
//! unblocks the workers; keep the guard alive for the duration of the call
//! in the ordinary synchronous case.

use std::sync::Arc;
use std::time::Duration;
use swscc_sync::interrupt::{AbortReason, Interrupt};

/// Why a checked SCC run failed. Every variant is a *clean* exit: workers
/// have drained, no thread is left running, and the input graph was never
/// mutated.
#[derive(Clone, Debug, PartialEq, Eq)]
#[must_use = "an SccError says why the run produced no result — propagate or handle it"]
pub enum SccError {
    /// The run was cooperatively cancelled (via [`Canceller::cancel`] or a
    /// [`RunGuard`] drop).
    Cancelled,
    /// The wall-clock deadline of [`RunGuard::with_deadline`] passed.
    DeadlineExceeded,
    /// A fixpoint loop exceeded its watchdog bound — the algorithm-level
    /// invariant "every round makes progress" was violated (a bug or an
    /// injected fault), and the run stopped instead of spinning forever.
    NonConvergence {
        /// Which loop tripped and at what bound.
        detail: String,
    },
    /// A worker panicked and the configured recovery policy
    /// ([`crate::config::PanicPolicy`]) did not (or could not) absorb it.
    WorkerPanic {
        /// The panic payload text.
        message: String,
    },
    /// An always-on host (the `swscc-serve` daemon) shed this run at its
    /// admission gate instead of queueing it unboundedly. The run never
    /// started; retry after the suggested backoff. Never produced by the
    /// batch entry points — it exists here so the service layer speaks
    /// the same typed-error language as everything below it.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for SccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SccError::Cancelled => write!(f, "run cancelled"),
            SccError::DeadlineExceeded => write!(f, "run exceeded its deadline"),
            SccError::NonConvergence { detail } => {
                write!(f, "non-convergence: {detail}")
            }
            SccError::WorkerPanic { message } => {
                write!(f, "worker panicked: {message}")
            }
            SccError::Overloaded { retry_after_ms } => {
                write!(
                    f,
                    "overloaded: shed at admission, retry after {retry_after_ms} ms"
                )
            }
        }
    }
}

impl std::error::Error for SccError {}

impl SccError {
    /// Builds the error for an abort recorded on `interrupt` (which must
    /// be aborted; the NonConvergence detail string is pulled from the
    /// token).
    pub(crate) fn from_interrupt(reason: AbortReason, interrupt: &Interrupt) -> SccError {
        match reason {
            AbortReason::Cancelled => SccError::Cancelled,
            AbortReason::DeadlineExceeded => SccError::DeadlineExceeded,
            AbortReason::NonConvergence => SccError::NonConvergence {
                detail: interrupt
                    .detail()
                    .unwrap_or_else(|| "fixpoint exceeded its watchdog bound".to_string()),
            },
        }
    }
}

/// Caller handle for one checked run: cancellation token + deadline.
///
/// Dropping the guard cancels the run — a checked driver still executing
/// against it observes the cancellation at its next poll and returns
/// [`SccError::Cancelled`]. Obtain a detached [`Canceller`] to cancel from
/// another thread while the guard stays with the caller.
pub struct RunGuard {
    interrupt: Arc<Interrupt>,
}

impl RunGuard {
    /// A guard with no deadline.
    #[allow(clippy::new_without_default)]
    pub fn new() -> RunGuard {
        RunGuard {
            interrupt: Interrupt::new(),
        }
    }

    /// A guard whose run aborts with [`SccError::DeadlineExceeded`] once
    /// `budget` wall-clock time has elapsed from now.
    ///
    /// Pathological budgets (`Duration::MAX` and friends) saturate to a
    /// far-future but *real* deadline instead of silently turning the
    /// run unbounded — see `Interrupt::with_deadline`.
    pub fn with_deadline(budget: Duration) -> RunGuard {
        RunGuard {
            interrupt: Interrupt::with_deadline(budget),
        }
    }

    /// Requests cancellation without dropping the guard.
    pub fn cancel(&self) {
        self.interrupt.cancel();
    }

    /// Polls the guard once: `Err` with the typed error if the run
    /// should stop. For hosts that drive their own loops against a
    /// guard instead of handing it to a pipeline — the condensation
    /// reachability walk in [`crate::snapshot::SccSnapshot`] and the
    /// per-request deadline checks in the `swscc-serve` daemon poll
    /// through this.
    pub fn check(&self) -> Result<(), SccError> {
        match self.interrupt.poll() {
            None => Ok(()),
            Some(reason) => Err(SccError::from_interrupt(reason, &self.interrupt)),
        }
    }

    /// A detached handle that can cancel this guard's run from any thread.
    pub fn canceller(&self) -> Canceller {
        Canceller {
            interrupt: Arc::clone(&self.interrupt),
        }
    }

    /// The shared token the kernels poll.
    pub(crate) fn interrupt(&self) -> &Arc<Interrupt> {
        &self.interrupt
    }
}

impl Drop for RunGuard {
    fn drop(&mut self) {
        self.interrupt.cancel();
    }
}

/// Detached cancellation handle (see [`RunGuard::canceller`]). Cloneable
/// and `Send`; cancelling twice (or after the run finished) is a no-op.
#[derive(Clone)]
#[must_use = "a dropped Canceller can never cancel its run — keep it, hand it to the \
              watcher thread, or call .cancel() immediately"]
pub struct Canceller {
    interrupt: Arc<Interrupt>,
}

impl Canceller {
    /// Requests cooperative cancellation of the associated run.
    pub fn cancel(&self) {
        self.interrupt.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_drop_cancels() {
        let guard = RunGuard::new();
        let interrupt = Arc::clone(guard.interrupt());
        assert!(!interrupt.is_aborted());
        drop(guard);
        assert_eq!(interrupt.reason(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn canceller_works_detached() {
        let guard = RunGuard::new();
        let c = guard.canceller();
        c.cancel();
        assert_eq!(guard.interrupt().reason(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn deadline_guard_trips() {
        let guard = RunGuard::with_deadline(Duration::ZERO);
        assert_eq!(
            guard.interrupt().poll(),
            Some(AbortReason::DeadlineExceeded)
        );
    }

    #[test]
    fn error_from_interrupt_carries_detail() {
        let i = Interrupt::new();
        i.trip_non_convergence("par-wcc", 17);
        let e = SccError::from_interrupt(i.reason().unwrap(), &i);
        match &e {
            SccError::NonConvergence { detail } => {
                assert!(detail.contains("par-wcc"));
                assert!(detail.contains("17"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(e.to_string().contains("non-convergence"));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(SccError::Cancelled.to_string(), "run cancelled");
        assert_eq!(
            SccError::DeadlineExceeded.to_string(),
            "run exceeded its deadline"
        );
        assert!(SccError::WorkerPanic {
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        let shed = SccError::Overloaded { retry_after_ms: 25 }.to_string();
        assert!(shed.contains("overloaded") && shed.contains("25"));
    }

    #[test]
    fn pathological_deadline_budget_saturates() {
        let guard = RunGuard::with_deadline(Duration::MAX);
        assert!(
            guard.interrupt().deadline().is_some(),
            "Duration::MAX must clamp to a real deadline, not drop it"
        );
        assert_eq!(guard.check(), Ok(()));
    }

    #[test]
    fn check_reports_typed_errors() {
        let guard = RunGuard::with_deadline(Duration::ZERO);
        assert_eq!(guard.check(), Err(SccError::DeadlineExceeded));
        let guard = RunGuard::new();
        assert_eq!(guard.check(), Ok(()));
        guard.cancel();
        assert_eq!(guard.check(), Err(SccError::Cancelled));
    }
}
