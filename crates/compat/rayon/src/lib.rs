//! Offline drop-in subset of the `rayon` API.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the (small) slice of rayon that the swscc crates actually
//! use: `par_iter`/`into_par_iter` with the map/filter/flat_map_iter family
//! of adapters, ordered `collect`, the usual reductions, `join`, scoped
//! thread pools with an exact thread count, and `par_sort_unstable`.
//!
//! Execution model: consumers split the index space of the underlying base
//! (a range, slice, or vector) into one contiguous part per worker and run
//! each part on a scoped OS thread, *pushing* items through the adapter
//! stack into a per-part sink (push style keeps borrowed inner iterators of
//! `flat_map_iter` local to one stack frame). The pool size is a
//! thread-local set by [`ThreadPool::install`], so
//! `swscc_parallel::pool::with_pool(n, ..)` pins parallel sections to
//! exactly `n` workers like real rayon does. Ordered consumers (`collect`)
//! concatenate per-part results in part order, preserving rayon's
//! indexed-collect semantics.

use std::cell::Cell;
use std::ops::ControlFlow;

use swscc_sync::atomic::{AtomicBool, Ordering};

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel sections run with on this thread: the
/// innermost [`ThreadPool::install`] override, or hardware parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        swscc_sync::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Re-raises a worker panic on the caller. String payloads are re-wrapped
/// with the worker's part index so a failure inside a parallel section
/// names which worker died; non-string payloads (e.g. the model checker's
/// abort sentinel) are resumed unchanged so their downcast identity
/// survives.
fn propagate_worker_panic(index: usize, payload: Box<dyn std::any::Any + Send>) -> ! {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        Some((*s).to_string())
    } else {
        payload.downcast_ref::<String>().cloned()
    };
    match msg {
        Some(m) => panic!("rayon worker {index} panicked: {m}"),
        None => std::panic::resume_unwind(payload),
    }
}

/// Builder for a fixed-size [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type kept for API compatibility; construction cannot fail here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}
impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => swscc_sync::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool" of an exact thread count. Workers are scoped threads spawned
/// per parallel section rather than persistent, which keeps the shim tiny;
/// the observable behavior (`current_num_threads`, section width) matches.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` with this pool's thread count governing parallel sections.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let threads = current_num_threads();
    if threads <= 1 {
        return (a(), b());
    }
    let inherit = POOL_THREADS.with(|t| t.get());
    swscc_sync::thread::scope(|s| {
        let hb = s.spawn(move || {
            POOL_THREADS.with(|t| t.set(inherit));
            b()
        });
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => propagate_worker_panic(1, payload),
        }
    })
}

/// Splits `0..units` into at most `current_num_threads()` contiguous parts
/// and runs `f(lo, hi)` for each, in parallel, returning results in part
/// order. The inherited pool size is propagated into the workers so nested
/// parallel sections see the same width.
fn run_parts<R: Send>(units: usize, f: &(impl Fn(usize, usize) -> R + Sync)) -> Vec<R> {
    let workers = current_num_threads().min(units.max(1));
    if workers <= 1 || units <= 1 {
        return vec![f(0, units)];
    }
    let per = units.div_ceil(workers);
    let bounds: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * per, ((w + 1) * per).min(units)))
        .filter(|(lo, hi)| lo < hi)
        .collect();
    let inherit = POOL_THREADS.with(|t| t.get());
    swscc_sync::thread::scope(|s| {
        let mut handles = Vec::with_capacity(bounds.len().saturating_sub(1));
        for &(lo, hi) in &bounds[1..] {
            handles.push(s.spawn(move || {
                POOL_THREADS.with(|t| t.set(inherit));
                f(lo, hi)
            }));
        }
        let first = f(bounds[0].0, bounds[0].1);
        let mut out = Vec::with_capacity(bounds.len());
        out.push(first);
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => out.push(r),
                // Part 0 ran inline on the caller, so spawned handle `w`
                // is worker `w + 1`.
                Err(payload) => propagate_worker_panic(w + 1, payload),
            }
        }
        out
    })
}

/// The parallel-iterator trait: a lazily adapted view over a splittable
/// index space. Items of the contiguous base sub-range `[lo, hi)` are
/// *pushed* through the adapter stack into `sink`; a `Break` return
/// requests early termination of the part.
pub trait ParallelIterator: Sized + Send + Sync {
    type Item: Send;

    /// Size of the underlying (pre-adapter) index space.
    fn units(&self) -> usize;

    /// Feeds every item produced by base indices `[lo, hi)` to `sink`,
    /// stopping early if the sink breaks.
    fn feed(
        &self,
        lo: usize,
        hi: usize,
        sink: &mut dyn FnMut(Self::Item) -> ControlFlow<()>,
    ) -> ControlFlow<()>;

    // ---- adapters -------------------------------------------------------

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        Map { base: self, f }
    }

    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, f }
    }

    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Sync + Send,
        R: Send,
    {
        FilterMap { base: self, f }
    }

    /// Like rayon's `flat_map_iter`: `f` returns a *sequential* iterator.
    fn flat_map_iter<I, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        F: Fn(Self::Item) -> I + Sync + Send,
        I: IntoIterator,
        I::Item: Send,
    {
        FlatMapIter { base: self, f }
    }

    fn copied<'a, T>(self) -> Copied<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Copy + Send + Sync + 'a,
    {
        Copied { base: self }
    }

    // ---- consumers ------------------------------------------------------

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_parts(self.units(), &|lo, hi| {
            let _ = self.feed(lo, hi, &mut |item| {
                f(item);
                ControlFlow::Continue(())
            });
        });
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    fn count(self) -> usize {
        run_parts(self.units(), &|lo, hi| {
            let mut n = 0usize;
            let _ = self.feed(lo, hi, &mut |_| {
                n += 1;
                ControlFlow::Continue(())
            });
            n
        })
        .into_iter()
        .sum()
    }

    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        run_parts(self.units(), &|lo, hi| {
            let mut part: Vec<Self::Item> = Vec::new();
            let _ = self.feed(lo, hi, &mut |item| {
                part.push(item);
                ControlFlow::Continue(())
            });
            part.into_iter().sum::<S>()
        })
        .into_iter()
        .sum()
    }

    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_parts(self.units(), &|lo, hi| {
            let mut best: Option<Self::Item> = None;
            let _ = self.feed(lo, hi, &mut |item| {
                if best.as_ref().is_none_or(|b| item > *b) {
                    best = Some(item);
                }
                ControlFlow::Continue(())
            });
            best
        })
        .into_iter()
        .flatten()
        .max()
    }

    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_parts(self.units(), &|lo, hi| {
            let mut best: Option<Self::Item> = None;
            let _ = self.feed(lo, hi, &mut |item| {
                if best.as_ref().is_none_or(|b| item < *b) {
                    best = Some(item);
                }
                ControlFlow::Continue(())
            });
            best
        })
        .into_iter()
        .flatten()
        .min()
    }

    fn max_by_key<K, F>(self, f: F) -> Option<Self::Item>
    where
        K: Ord + Send,
        F: Fn(&Self::Item) -> K + Sync + Send,
    {
        run_parts(self.units(), &|lo, hi| {
            let mut best: Option<(K, Self::Item)> = None;
            let _ = self.feed(lo, hi, &mut |item| {
                let k = f(&item);
                // `>=` keeps the later item on ties, matching sequential
                // max_by_key; across parts ties resolve to the later part.
                if best.as_ref().is_none_or(|(bk, _)| k >= *bk) {
                    best = Some((k, item));
                }
                ControlFlow::Continue(())
            });
            best
        })
        .into_iter()
        .flatten()
        .max_by(|a, b| a.0.cmp(&b.0))
        .map(|(_, item)| item)
    }

    /// Returns some item matching `pred`, stopping other workers early.
    /// Like rayon, *which* match is returned is not specified.
    fn find_any<F>(self, pred: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        let found = AtomicBool::new(false);
        run_parts(self.units(), &|lo, hi| {
            let mut hit: Option<Self::Item> = None;
            let mut since_check = 0u32;
            let _ = self.feed(lo, hi, &mut |item| {
                since_check += 1;
                if since_check >= 64 {
                    since_check = 0;
                    // ordering: pure cancellation hint — a stale read only
                    // delays early exit; the returned item is published by
                    // the scope join in run_parts, not by this flag.
                    if found.load(Ordering::Relaxed) {
                        return ControlFlow::Break(());
                    }
                }
                if pred(&item) {
                    // ordering: see the load above — flag is advisory only.
                    found.store(true, Ordering::Relaxed);
                    hit = Some(item);
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            });
            hit
        })
        .into_iter()
        .flatten()
        .next()
    }
}

/// Ordered parallel collection target.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self {
        let parts = run_parts(it.units(), &|lo, hi| {
            let mut part: Vec<T> = Vec::new();
            let _ = it.feed(lo, hi, &mut |item| {
                part.push(item);
                ControlFlow::Continue(())
            });
            part
        });
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend(p);
        }
        out
    }
}

// ---- adapter types ------------------------------------------------------

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;
    fn units(&self) -> usize {
        self.base.units()
    }
    fn feed(
        &self,
        lo: usize,
        hi: usize,
        sink: &mut dyn FnMut(R) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.base.feed(lo, hi, &mut |x| sink((self.f)(x)))
    }
}

pub struct Filter<B, F> {
    base: B,
    f: F,
}

impl<B, F> ParallelIterator for Filter<B, F>
where
    B: ParallelIterator,
    F: Fn(&B::Item) -> bool + Sync + Send,
{
    type Item = B::Item;
    fn units(&self) -> usize {
        self.base.units()
    }
    fn feed(
        &self,
        lo: usize,
        hi: usize,
        sink: &mut dyn FnMut(B::Item) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.base.feed(lo, hi, &mut |x| {
            if (self.f)(&x) {
                sink(x)
            } else {
                ControlFlow::Continue(())
            }
        })
    }
}

pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> Option<R> + Sync + Send,
    R: Send,
{
    type Item = R;
    fn units(&self) -> usize {
        self.base.units()
    }
    fn feed(
        &self,
        lo: usize,
        hi: usize,
        sink: &mut dyn FnMut(R) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.base.feed(lo, hi, &mut |x| match (self.f)(x) {
            Some(y) => sink(y),
            None => ControlFlow::Continue(()),
        })
    }
}

pub struct FlatMapIter<B, F> {
    base: B,
    f: F,
}

impl<B, F, I> ParallelIterator for FlatMapIter<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> I + Sync + Send,
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn units(&self) -> usize {
        self.base.units()
    }
    fn feed(
        &self,
        lo: usize,
        hi: usize,
        sink: &mut dyn FnMut(I::Item) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.base.feed(lo, hi, &mut |x| {
            for y in (self.f)(x) {
                sink(y)?;
            }
            ControlFlow::Continue(())
        })
    }
}

pub struct Copied<B> {
    base: B,
}

impl<'a, B, T> ParallelIterator for Copied<B>
where
    B: ParallelIterator<Item = &'a T>,
    T: Copy + Send + Sync + 'a,
{
    type Item = T;
    fn units(&self) -> usize {
        self.base.units()
    }
    fn feed(
        &self,
        lo: usize,
        hi: usize,
        sink: &mut dyn FnMut(T) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.base.feed(lo, hi, &mut |x| sink(*x))
    }
}

// ---- bases --------------------------------------------------------------

/// Base over an integer range.
pub struct RangeParIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_base {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;
            fn units(&self) -> usize {
                self.len
            }
            fn feed(
                &self,
                lo: usize,
                hi: usize,
                sink: &mut dyn FnMut($t) -> ControlFlow<()>,
            ) -> ControlFlow<()> {
                for v in self.start + lo as $t..self.start + hi as $t {
                    sink(v)?;
                }
                ControlFlow::Continue(())
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;
            fn into_par_iter(self) -> RangeParIter<$t> {
                RangeParIter {
                    start: self.start,
                    len: (self.end.max(self.start) - self.start) as usize,
                }
            }
        }
    )*};
}

impl_range_base!(u32, u64, usize);

/// Base over a borrowed slice; items are references.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    fn units(&self) -> usize {
        self.slice.len()
    }
    fn feed(
        &self,
        lo: usize,
        hi: usize,
        sink: &mut dyn FnMut(&'a T) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        for v in &self.slice[lo..hi] {
            sink(v)?;
        }
        ControlFlow::Continue(())
    }
}

/// Base over an owned vector of `Copy` items (the only owning case the
/// workspace uses; avoids needing chunk-moving machinery).
pub struct VecParIter<T> {
    vec: Vec<T>,
}

impl<T: Copy + Send + Sync> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn units(&self) -> usize {
        self.vec.len()
    }
    fn feed(
        &self,
        lo: usize,
        hi: usize,
        sink: &mut dyn FnMut(T) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        for &v in &self.vec[lo..hi] {
            sink(v)?;
        }
        ControlFlow::Continue(())
    }
}

/// `into_par_iter()` entry point.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Copy + Send + Sync> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { vec: self }
    }
}

/// `.par_iter()` entry point (by shared reference).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// Parallel in-place slice sort. On this shim the sort itself is
/// sequential (`sort_unstable`): every workspace call site sorts small or
/// already-post-processed arrays off the traversal hot path, and the
/// container is effectively single-core.
pub trait ParallelSliceMut<T: Send> {
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ordered_collect() {
        let v: Vec<u32> = (0..1000u32).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.windows(2).all(|w| w[1] == w[0] + 2));
    }

    #[test]
    fn filter_flat_map() {
        let nested: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter(|&x| x % 10 == 0)
            .flat_map_iter(|x| x..x + 3)
            .collect();
        assert_eq!(nested.len(), 30);
        assert_eq!(&nested[..3], &[0, 1, 2]);
    }

    #[test]
    fn flat_map_iter_borrowing() {
        // inner iterators may borrow environment data (the BFS pattern)
        let adj: Vec<Vec<u32>> = vec![vec![1, 2], vec![3], vec![], vec![4, 5]];
        let frontier = vec![0usize, 3];
        let out: Vec<u32> = frontier
            .par_iter()
            .flat_map_iter(|&u| adj[u].iter().copied())
            .collect();
        assert_eq!(out, vec![1, 2, 4, 5]);
    }

    #[test]
    fn reductions() {
        assert_eq!((0..1000u64).into_par_iter().sum::<u64>(), 499500);
        assert_eq!((0..100u32).into_par_iter().max(), Some(99));
        assert_eq!((0..100u32).into_par_iter().filter(|&x| x > 90).count(), 9);
        let v = vec![3u32, 1, 4, 1, 5];
        assert_eq!(v.par_iter().copied().max_by_key(|&x| x), Some(5));
        assert!((0..1000u32)
            .into_par_iter()
            .find_any(|&x| x == 777)
            .is_some());
        assert!((0..1000u32)
            .into_par_iter()
            .find_any(|&x| x == 7777)
            .is_none());
    }

    #[test]
    fn install_pins_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // nested sections inherit the width
        let inner = pool.install(|| {
            run_parts(8, &|_lo, _hi| current_num_threads())
                .into_iter()
                .max()
                .unwrap()
        });
        assert_eq!(inner, 3);
    }

    #[test]
    fn join_runs_both() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| join(|| 1 + 1, || 2 + 2));
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn par_sort() {
        let mut v: Vec<u32> = (0..500).rev().collect();
        v.par_sort_unstable();
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn worker_panics_carry_worker_index() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        // recovery: test-local — asserting the shim rewraps a worker
        // panic with the worker index before rethrowing it.
        let res = std::panic::catch_unwind(|| {
            pool.install(|| {
                (0..8usize).into_par_iter().for_each(|i| {
                    // Parts are contiguous (2 items each with 4 workers),
                    // so item 7 lands on the last spawned worker.
                    if i == 7 {
                        panic!("boom at {i}");
                    }
                })
            })
        });
        let payload = res.expect_err("worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("enriched panic payload is a String");
        assert!(
            msg.contains("rayon worker") && msg.contains("boom at 7"),
            "panic message should name the worker: {msg}"
        );
    }

    #[test]
    fn join_propagates_second_closure_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        // recovery: test-local — asserting a join-arm panic propagates
        // out of install with the worker attribution intact.
        let res = std::panic::catch_unwind(|| {
            pool.install(|| join(|| 1, || -> u32 { panic!("right side") }))
        });
        let payload = res.expect_err("join worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("enriched panic payload is a String");
        assert!(msg.contains("rayon worker 1"), "{msg}");
        assert!(msg.contains("right side"), "{msg}");
    }

    #[test]
    fn for_each_visits_all() {
        use swscc_sync::atomic::AtomicUsize;
        let hits = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0..10_000u32).into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10_000);
    }
}
