//! Chaos battery: seed-replayable fault-injection schedules across every
//! parallel driver.
//!
//! Each schedule is derived from a single `u64` seed by a splitmix64
//! chain: seed → (driver, graph, thread count, panic policy, fault plan).
//! The run must either finish with Tarjan-identical components or return
//! a clean typed [`SccError`] — never hang, never a wrong answer, never
//! an unabsorbed panic.
//!
//! All schedules run inside ONE `#[test]`: armed fault sessions serialize
//! on a process-global mutex (`swscc::sync::fault`), so splitting them
//! across tests would only interleave lock waits, and a single test keeps
//! the seed chain deterministic.
//!
//! Replaying a failure: the battery prints the offending schedule seed;
//! rerun just that schedule with
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test --test chaos -- --nocapture
//! ```
//!
//! `CHAOS_ROUNDS=<n>` overrides the schedule count (default 320).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use swscc::graph::gen::erdos_renyi::erdos_renyi;
use swscc::graph::gen::watts_strogatz::watts_strogatz;
use swscc::serve::{Client, Endpoint, Listener, Response, ServeConfig, ServedGraph, Server};
use swscc::sync::fault::{self, FaultKind, FaultPlan};
use swscc::{
    detect_scc, run_checked, run_pipeline, Algorithm, CsrGraph, PanicPolicy, Pipeline, RunGuard,
    SccConfig, SccError,
};

/// What a chaos schedule drives: a stock algorithm through `run_checked`,
/// or a custom `--pipeline` composition through `run_pipeline` (same
/// engine, same typed-error contract).
#[derive(Clone, Copy, Debug)]
enum Driver {
    Algo(Algorithm),
    Custom(&'static str),
}

/// Each driver paired with the fault sites its pipeline actually passes
/// through. A plan can still land past the end of the run (late `nth`,
/// small graph) — those no-fire schedules are counted and reported as
/// skipped, and the per-site guards below make sure none of them turns
/// the whole battery vacuous. `model-yield` is excluded: it only exists
/// under `--cfg model`.
const DRIVERS: &[(Driver, &[&str])] = &[
    (
        Driver::Algo(Algorithm::Baseline),
        &["trim-round", "workqueue-task", "recur-task"],
    ),
    (
        Driver::Algo(Algorithm::Method1),
        &[
            "trim-round",
            "fwbw-superstep",
            "workqueue-task",
            "recur-task",
        ],
    ),
    (
        Driver::Algo(Algorithm::Method2),
        &[
            "trim-round",
            "fwbw-superstep",
            "wcc-round",
            "workqueue-task",
            "recur-task",
        ],
    ),
    (
        Driver::Algo(Algorithm::Coloring),
        &["trim-round", "coloring-round"],
    ),
    (
        Driver::Algo(Algorithm::Multistep),
        &["trim-round", "fwbw-superstep", "coloring-round"],
    ),
    (
        Driver::Custom("trim,fwbw,trim,multisearch"),
        &["trim-round", "fwbw-superstep", "multisearch-round"],
    ),
    (Driver::Custom("multisearch"), &["multisearch-round"]),
];

const DEFAULT_ROUNDS: u64 = 320;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Small-world-ish test graphs plus their Tarjan oracle labels. Kept
/// small (≤ ~400 nodes) so hundreds of schedules finish quickly; every
/// shape still exercises trim, peel, WCC, coloring and the task queue.
fn graph_pool() -> Vec<(&'static str, CsrGraph, Vec<u32>)> {
    let mut pool: Vec<(&'static str, CsrGraph)> = Vec::new();

    // Bowtie: giant cycle + IN/OUT tendrils + satellite cycles.
    let mut edges: Vec<(u32, u32)> = (0..60u32).map(|i| (i, (i + 1) % 60)).collect();
    for s in 0..10u32 {
        let b = 60 + 3 * s;
        edges.extend([(0, b), (b, b + 1), (b + 1, b + 2), (b + 2, b)]);
    }
    for t in 90..110u32 {
        edges.push((t, 1)); // IN tendrils
        edges.push((2, t + 20)); // OUT tendrils
    }
    pool.push(("bowtie", CsrGraph::from_edges(130, &edges)));

    pool.push(("er-sparse", erdos_renyi(150, 250, 7)));
    pool.push(("er-dense", erdos_renyi(120, 700, 11)));
    pool.push(("ws-ring", watts_strogatz(100, 4, 0.2, 13)));
    pool.push(("singletons", CsrGraph::from_edges(40, &[(0, 1), (2, 3)])));
    pool.push(("empty", CsrGraph::from_edges(0, &[])));

    pool.into_iter()
        .map(|(name, g)| {
            let labels = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default())
                .0
                .canonical_labels();
            (name, g, labels)
        })
        .collect()
}

struct Schedule {
    driver: Driver,
    graph: usize,
    threads: usize,
    policy: PanicPolicy,
    plan: FaultPlan,
}

fn derive(seed: u64, num_graphs: usize) -> Schedule {
    let mut s = seed;
    let (driver, sites) = DRIVERS[(splitmix64(&mut s) % DRIVERS.len() as u64) as usize];
    let graph = (splitmix64(&mut s) % num_graphs as u64) as usize;
    let threads = [1, 2, 4][(splitmix64(&mut s) % 3) as usize];
    // Bias toward Fallback: it exercises the recovery machinery; Fail
    // only needs enough coverage to prove the error is typed.
    let policy = if splitmix64(&mut s).is_multiple_of(4) {
        PanicPolicy::Fail
    } else {
        PanicPolicy::Fallback
    };
    let site = sites[(splitmix64(&mut s) % sites.len() as u64) as usize];
    // Early hits are the common case (small graphs converge in a handful
    // of rounds); a tail of later indices probes deeper into the run and
    // sometimes lands past the end — a legitimate no-fire schedule.
    let nth = splitmix64(&mut s) % 4;
    // Mostly panics; some delays (straggler timing, must stay correct)
    // and some persistent (repeat) panics that exhaust the retry and
    // force the degraded-to-sequential path.
    let roll = splitmix64(&mut s) % 8;
    let kind = if roll == 0 {
        FaultKind::Delay(Duration::from_millis(1 + splitmix64(&mut s) % 4))
    } else {
        FaultKind::Panic
    };
    let repeat = roll == 1 || roll == 2;
    Schedule {
        driver,
        graph,
        threads,
        policy,
        plan: FaultPlan {
            site: Some(site),
            nth,
            kind,
            repeat,
        },
    }
}

/// One schedule's bookkeeping: which site was armed, and whether the
/// fault actually fired (a late `nth` can land past the end of the run).
struct ScheduleOutcome {
    site: &'static str,
    fired: bool,
}

/// Runs one schedule; returns the armed site and whether it fired, or an
/// error description on any violation.
fn run_schedule(
    seed: u64,
    pool: &[(&'static str, CsrGraph, Vec<u32>)],
) -> Result<ScheduleOutcome, String> {
    let sched = derive(seed, pool.len());
    let (gname, g, oracle) = &pool[sched.graph];
    let mut cfg = SccConfig::with_threads(sched.threads);
    cfg.on_panic = sched.policy;
    let site = sched.plan.site.expect("every chaos plan names a site");
    let describe = || {
        format!(
            "seed {seed}: {:?} on {gname} ({} threads, {:?}, plan {:?})",
            sched.driver, sched.threads, sched.policy, sched.plan
        )
    };

    let guard = RunGuard::new();
    let fault_guard = fault::arm(sched.plan);
    let outcome = match sched.driver {
        Driver::Algo(algo) => run_checked(g, algo, &cfg, &guard),
        Driver::Custom(spec) => {
            let pipeline = Pipeline::parse(spec).expect("chaos pipeline specs are legal");
            run_pipeline(g, &pipeline, &cfg, &guard)
        }
    };
    let fired = fault::fired();
    drop(fault_guard);

    match outcome {
        Ok((result, _report)) => {
            if result.canonical_labels() != *oracle {
                return Err(format!("{}: WRONG SCCs", describe()));
            }
            Ok(ScheduleOutcome { site, fired })
        }
        Err(SccError::WorkerPanic { message }) => {
            // The only acceptable error here: a panic surfaced under the
            // Fail policy, and it must be ours.
            if sched.policy != PanicPolicy::Fail {
                return Err(format!(
                    "{}: Fallback policy surfaced a panic: {message}",
                    describe()
                ));
            }
            if !fired || !message.contains("injected fault") {
                return Err(format!("{}: non-injected panic: {message}", describe()));
            }
            Ok(ScheduleOutcome { site, fired: true })
        }
        Err(e) => Err(format!("{}: unexpected error {e}", describe())),
    }
}

/// Injected panics are expected by the hundreds; keep the default
/// hook's backtrace spam out of the test output. Real (non-injected)
/// panics still print. Installing twice (both batteries run in one
/// process) just stacks two copies of the same filter.
fn install_quiet_panic_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|m| m.contains("injected fault"));
        if !injected {
            default_hook(info);
        }
    }));
}

#[test]
fn chaos_battery() {
    install_quiet_panic_hook();

    let pool = graph_pool();

    if let Ok(seed) = std::env::var("CHAOS_SEED") {
        let seed: u64 = seed.parse().expect("CHAOS_SEED must be a u64");
        match run_schedule(seed, &pool) {
            Ok(out) => println!(
                "seed {seed}: ok (site {}, fault fired: {})",
                out.site, out.fired
            ),
            Err(msg) => panic!("chaos replay failed: {msg}"),
        }
        return;
    }

    let rounds: u64 = std::env::var("CHAOS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ROUNDS);
    let mut chain = 0x5cc_c4a05u64;
    let mut failures = Vec::new();
    // Per-site (scheduled, fired) accounting: a plan whose `nth` lands
    // past the end of the run is a legitimate no-fire schedule, but it
    // must be *counted as skipped*, not silently treated as coverage.
    let mut by_site: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for _ in 0..rounds {
        let seed = splitmix64(&mut chain);
        match run_schedule(seed, &pool) {
            Ok(out) => {
                let entry = by_site.entry(out.site).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += u64::from(out.fired);
            }
            Err(msg) => failures.push(msg),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {rounds} chaos schedules failed (replay with CHAOS_SEED=<seed>):\n{}",
        failures.len(),
        failures.join("\n")
    );
    let fired_count: u64 = by_site.values().map(|&(_, f)| f).sum();
    println!("chaos coverage over {rounds} schedules (site: fired/scheduled, skipped):");
    for (site, &(scheduled, fired)) in &by_site {
        println!(
            "  {site:<18} {fired:>4}/{scheduled:<4} ({} skipped)",
            scheduled - fired
        );
    }
    // Vacuity guards. Global: if fault sites are renamed or removed,
    // every plan silently misses and the battery proves nothing — a
    // healthy mix has well over a third of plans actually triggering.
    // Per-site (full batteries only, so short CHAOS_ROUNDS debug runs
    // stay usable): every site the derivation armed must have produced
    // at least one real trigger.
    assert!(
        fired_count >= 1,
        "no chaos schedule fired its fault — site list out of date?"
    );
    assert!(
        fired_count * 3 >= rounds,
        "only {fired_count}/{rounds} schedules actually fired their fault \
         — site list out of date?"
    );
    if rounds >= DEFAULT_ROUNDS {
        for (site, &(scheduled, fired)) in &by_site {
            assert!(
                fired >= 1,
                "site {site} was armed {scheduled} times but never fired \
                 — driver never reaches it?"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Server chaos group: seed-replayable fault schedules against a live
// `swscc-serve` instance on a real socket. The invariant under attack is
// the availability doctrine: a serving epoch is always installed, every
// failure a client sees is typed, and one hostile/panicking connection
// never costs the listener or another client.
//
// Replay: `SERVE_CHAOS_SEED=<seed> cargo test --test chaos server_chaos
// -- --nocapture`; `SERVE_CHAOS_ROUNDS=<n>` overrides the count.
//
// Every server interaction here happens under an armed fault session —
// the schedule's real plan, or an inert one for boot and for the
// no-fault control schedules. That is not optional hygiene: a server
// recompute runs the full pipeline, so unarmed traffic from this group
// could consume a single-shot `trim-round` plan armed by the main
// battery running in the same process.
// ---------------------------------------------------------------------------

const SERVE_DEFAULT_ROUNDS: u64 = 24;

/// What a server schedule injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ServeScenario {
    /// No fault: recompute must bump the epoch, answers stay correct.
    Control,
    /// Panic at the epoch-swap point: recompute fails typed, the old
    /// epoch keeps serving, the next recompute heals.
    SwapKill,
    /// Panic inside a query handler: exactly one connection dies, the
    /// listener and fresh connections survive.
    FrameKill,
    /// Delay inside a query handler with a 1ms budget: the miss is a
    /// typed `DeadlineExceeded`, and the next (unarmed) query answers.
    FrameStall,
    /// Panic at a pipeline site during recompute: `Fallback` absorbs it
    /// and publishes, `Fail` degrades to a typed `RecomputeFailed` with
    /// the old epoch serving.
    RecomputeKill,
    /// Panic at the incr-merge point while an inserted back edge is
    /// collapsing its merge set: the write fails typed, the old epoch
    /// keeps serving the pre-mutation answers, and the retried insert
    /// heals by rebuild into the merged (Tarjan-on-mutated-graph)
    /// partition.
    MergeKill,
    /// Panic at the delta-compact point: only the rebuilt backend is
    /// lost — base + overlay keep answering, and the retried compact
    /// folds the staged deltas.
    CompactKill,
}

struct ServeSchedule {
    scenario: ServeScenario,
    graph: usize,
    threads: usize,
    policy: PanicPolicy,
    plan: FaultPlan,
}

/// An inert plan: arming it serializes with the other battery without
/// injecting anything.
fn serve_inert_plan() -> FaultPlan {
    FaultPlan {
        site: Some("serve-chaos-inert"),
        nth: 0,
        kind: FaultKind::Panic,
        repeat: false,
    }
}

fn derive_serve(seed: u64, num_graphs: usize) -> ServeSchedule {
    let mut s = seed;
    let scenario = [
        ServeScenario::Control,
        ServeScenario::SwapKill,
        ServeScenario::FrameKill,
        ServeScenario::FrameStall,
        ServeScenario::RecomputeKill,
        ServeScenario::MergeKill,
        ServeScenario::CompactKill,
    ][(splitmix64(&mut s) % 7) as usize];
    let graph = (splitmix64(&mut s) % num_graphs as u64) as usize;
    let threads = [1, 2, 4][(splitmix64(&mut s) % 3) as usize];
    let policy = if splitmix64(&mut s).is_multiple_of(2) {
        PanicPolicy::Fail
    } else {
        PanicPolicy::Fallback
    };
    let plan = match scenario {
        ServeScenario::Control => serve_inert_plan(),
        ServeScenario::SwapKill => FaultPlan {
            site: Some(fault::SERVE_SWAP),
            nth: 0,
            kind: FaultKind::Panic,
            repeat: false,
        },
        ServeScenario::FrameKill => FaultPlan {
            site: Some(fault::SERVE_FRAME),
            nth: splitmix64(&mut s) % 3,
            kind: FaultKind::Panic,
            repeat: false,
        },
        ServeScenario::FrameStall => FaultPlan {
            site: Some(fault::SERVE_FRAME),
            nth: 0,
            kind: FaultKind::Delay(Duration::from_millis(40)),
            repeat: false,
        },
        ServeScenario::RecomputeKill => {
            // Method2's pipeline always runs trim and fwbw; wcc joins
            // the rotation as a sometimes-skipped site (counted via
            // `fault::fired`).
            let site =
                ["trim-round", "fwbw-superstep", "wcc-round"][(splitmix64(&mut s) % 3) as usize];
            FaultPlan {
                site: Some(site),
                nth: splitmix64(&mut s) % 2,
                kind: FaultKind::Panic,
                repeat: splitmix64(&mut s).is_multiple_of(3),
            }
        }
        ServeScenario::MergeKill => FaultPlan {
            site: Some(fault::INCR_MERGE),
            nth: 0,
            kind: FaultKind::Panic,
            repeat: false,
        },
        ServeScenario::CompactKill => FaultPlan {
            site: Some(fault::DELTA_COMPACT),
            nth: 0,
            kind: FaultKind::Panic,
            repeat: false,
        },
    };
    ServeSchedule {
        scenario,
        graph,
        threads,
        policy,
        plan,
    }
}

/// Samples seeded node pairs and checks `same-scc` answers against the
/// Tarjan oracle labels. Every wire failure is a violation here: these
/// run when the connection is expected healthy.
fn check_oracle_pairs(
    c: &mut Client,
    oracle: &[u32],
    seed: u64,
    describe: &dyn Fn() -> String,
) -> Result<(), String> {
    let n = oracle.len() as u64;
    if n == 0 {
        // The empty graph has no in-range pairs; probe the typed
        // out-of-range path instead.
        return match c.same_scc(0, 0, 0) {
            Ok(Response::OutOfRange) => Ok(()),
            other => Err(format!("{}: empty graph gave {other:?}", describe())),
        };
    }
    let mut s = seed;
    for _ in 0..4 {
        let u = (splitmix64(&mut s) % n) as u32;
        let v = (splitmix64(&mut s) % n) as u32;
        let want = oracle[u as usize] == oracle[v as usize];
        match c.same_scc(u, v, 0) {
            Ok(Response::Bool(got)) if got == want => {}
            other => {
                return Err(format!(
                    "{}: same_scc({u},{v}) wanted {want}, got {other:?}",
                    describe()
                ))
            }
        }
    }
    Ok(())
}

/// Tarjan oracle over the base graph plus `extra` edges — the ground
/// truth a healed incremental engine must serve after a mutation.
fn mutated_oracle(g: &CsrGraph, extra: &[(u32, u32)]) -> Vec<u32> {
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    edges.extend_from_slice(extra);
    detect_scc(
        &CsrGraph::from_edges(g.num_nodes(), &edges),
        Algorithm::Tarjan,
        &SccConfig::default(),
    )
    .0
    .canonical_labels()
}

/// Runs one server schedule end-to-end; returns whether the armed fault
/// actually fired, or a violation description.
fn run_serve_schedule(
    seed: u64,
    pool: &[(&'static str, CsrGraph, Vec<u32>)],
) -> Result<(ServeScenario, bool), String> {
    let sched = derive_serve(seed, pool.len());
    let (gname, g, oracle) = &pool[sched.graph];
    let describe = || {
        format!(
            "serve seed {seed}: {:?} on {gname} ({} threads, {:?}, plan {:?})",
            sched.scenario, sched.threads, sched.policy, sched.plan
        )
    };

    let mut scc = SccConfig::with_threads(sched.threads);
    scc.on_panic = sched.policy;
    let config = ServeConfig {
        scc,
        ..ServeConfig::default()
    };

    // Boot under an inert session so pipeline-site plans cannot hit the
    // initial build — the scenario under test is the *recompute* path.
    let (server, bound, handle) = {
        let _quiet = fault::arm(serve_inert_plan());
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into()))
            .map_err(|e| format!("{}: bind failed: {e}", describe()))?;
        let bound = listener
            .local_endpoint()
            .map_err(|e| format!("{}: no local endpoint: {e}", describe()))?;
        let server = Server::new(ServedGraph::Raw(g.clone()), config)
            .map_err(|e| format!("{}: initial build failed: {e}", describe()))?;
        let loop_server = Arc::clone(&server);
        let handle = swscc::sync::thread::spawn(move || loop_server.run(listener));
        (server, bound, handle)
    };

    let fault_guard = fault::arm(sched.plan);
    let io = Duration::from_secs(10);
    let connect =
        || Client::connect(&bound, io).map_err(|e| format!("{}: connect failed: {e}", describe()));
    let result = (|| -> Result<(), String> {
        let mut c = connect()?;
        match sched.scenario {
            ServeScenario::Control => {
                check_oracle_pairs(&mut c, oracle, seed ^ 1, &describe)?;
                match c.recompute() {
                    Ok(Response::Recomputed { epoch: 1 }) => {}
                    other => return Err(format!("{}: recompute gave {other:?}", describe())),
                }
                check_oracle_pairs(&mut c, oracle, seed ^ 2, &describe)?;
            }
            ServeScenario::SwapKill => {
                match c.recompute() {
                    Ok(Response::RecomputeFailed { message })
                        if message.contains("injected fault") => {}
                    other => return Err(format!("{}: kill gave {other:?}", describe())),
                }
                if server.epoch() != 0 {
                    return Err(format!("{}: failed swap advanced the epoch", describe()));
                }
                let stats = c
                    .stats()
                    .map_err(|e| format!("{}: stats failed: {e}", describe()))?;
                if !stats.stale || stats.recomputes_failed != 1 {
                    return Err(format!(
                        "{}: stale bookkeeping wrong: {stats:?}",
                        describe()
                    ));
                }
                check_oracle_pairs(&mut c, oracle, seed ^ 3, &describe)?;
                // One-shot plan is spent: the service heals.
                match c.recompute() {
                    Ok(Response::Recomputed { epoch: 1 }) => {}
                    other => return Err(format!("{}: heal gave {other:?}", describe())),
                }
            }
            ServeScenario::FrameKill => {
                // The nth admitted query panics its handler: that one
                // connection must die; earlier queries and later fresh
                // connections must answer.
                let nth = sched.plan.nth as usize;
                let mut died = false;
                for i in 0..=nth {
                    match c.scc_id(0, 0) {
                        Ok(_) if i < nth => {}
                        Err(_) if i == nth => died = true,
                        other => {
                            return Err(format!("{}: query {i}/{nth} gave {other:?}", describe()))
                        }
                    }
                }
                if !died {
                    return Err(format!("{}: victim connection survived", describe()));
                }
                let mut fresh = connect()?;
                check_oracle_pairs(&mut fresh, oracle, seed ^ 4, &describe)?;
                let stats = fresh
                    .stats()
                    .map_err(|e| format!("{}: stats failed: {e}", describe()))?;
                if stats.quarantined < 1 {
                    return Err(format!("{}: panic not counted as quarantine", describe()));
                }
            }
            ServeScenario::FrameStall => {
                match c.scc_id(0, 1) {
                    Ok(Response::DeadlineExceeded) => {}
                    other => return Err(format!("{}: stall gave {other:?}", describe())),
                }
                // Plan consumed; the connection survived the miss.
                check_oracle_pairs(&mut c, oracle, seed ^ 5, &describe)?;
            }
            ServeScenario::RecomputeKill => {
                let reply = c
                    .recompute()
                    .map_err(|e| format!("{}: recompute dropped: {e}", describe()))?;
                let fired = fault::fired();
                match (reply, sched.policy, fired) {
                    // No-fire (site past the run's rounds): plain success.
                    (Response::Recomputed { epoch: 1 }, _, false) => {}
                    // Fallback absorbs the panic and still publishes.
                    (Response::Recomputed { epoch: 1 }, PanicPolicy::Fallback, true) => {}
                    (Response::RecomputeFailed { message }, PanicPolicy::Fail, true) => {
                        if !message.contains("injected fault") {
                            return Err(format!("{}: non-injected failure: {message}", describe()));
                        }
                        if server.epoch() != 0 {
                            return Err(format!(
                                "{}: failed recompute advanced the epoch",
                                describe()
                            ));
                        }
                    }
                    (other, policy, fired) => {
                        return Err(format!(
                            "{}: ({other:?}, {policy:?}, fired={fired}) is not a legal outcome",
                            describe()
                        ))
                    }
                }
                // Whatever epoch is serving must still answer correctly
                // (repeat plans can keep firing here — queries don't
                // cross pipeline sites, so they stay clean).
                check_oracle_pairs(&mut c, oracle, seed ^ 6, &describe)?;
            }
            ServeScenario::MergeKill => {
                // Reversing a cross-SCC base edge closes a condensation
                // cycle, so the insert is guaranteed to reach the
                // incr-merge point. A fully condensed graph has no such
                // edge: the plan legitimately never fires, reads still
                // answer.
                let cross = g
                    .edges()
                    .find(|&(eu, ev)| oracle[eu as usize] != oracle[ev as usize]);
                let Some((eu, ev)) = cross else {
                    check_oracle_pairs(&mut c, oracle, seed ^ 7, &describe)?;
                    return Ok(());
                };
                match c.insert_edge(ev, eu, 0) {
                    Ok(Response::MutateFailed { message })
                        if message.contains("injected fault") => {}
                    other => return Err(format!("{}: killed merge gave {other:?}", describe())),
                }
                if server.epoch() != 0 {
                    return Err(format!("{}: killed merge advanced the epoch", describe()));
                }
                // Old epoch serving: pre-mutation answers, failure counted.
                check_oracle_pairs(&mut c, oracle, seed ^ 8, &describe)?;
                let stats = c
                    .stats()
                    .map_err(|e| format!("{}: stats failed: {e}", describe()))?;
                if stats.mutations_failed != 1 {
                    return Err(format!(
                        "{}: mutate-failed bookkeeping wrong: {stats:?}",
                        describe()
                    ));
                }
                // Plan spent: the retry heals by rebuild (the graph
                // already holds the edge) and publishes the merged
                // partition, which must match Tarjan on the mutated
                // graph.
                match c.insert_edge(ev, eu, 0) {
                    Ok(Response::Mutated(m)) if m.epoch == 1 => {}
                    other => return Err(format!("{}: healing insert gave {other:?}", describe())),
                }
                let healed = mutated_oracle(g, &[(ev, eu)]);
                check_oracle_pairs(&mut c, &healed, seed ^ 9, &describe)?;
            }
            ServeScenario::CompactKill => {
                // Stage a pending overlay entry when the graph has nodes
                // (a self-loop is partition-neutral, so the oracle stays
                // valid throughout).
                if !oracle.is_empty() {
                    match c.insert_edge(0, 0, 0) {
                        Ok(Response::Mutated(_)) => {}
                        other => {
                            return Err(format!("{}: staging insert gave {other:?}", describe()))
                        }
                    }
                }
                let staged = c
                    .stats()
                    .map_err(|e| format!("{}: stats failed: {e}", describe()))?
                    .pending_deltas;
                match c.compact() {
                    Ok(Response::MutateFailed { message })
                        if message.contains("injected fault") => {}
                    other => return Err(format!("{}: killed compact gave {other:?}", describe())),
                }
                // Only the rebuilt backend was lost: base + overlay keep
                // answering, and the retried compact folds the staged
                // entries.
                check_oracle_pairs(&mut c, oracle, seed ^ 10, &describe)?;
                match c.compact() {
                    Ok(Response::Compacted { folded, .. }) if folded == staged => {}
                    other => {
                        return Err(format!(
                            "{}: healing compact gave {other:?} (staged {staged})",
                            describe()
                        ))
                    }
                }
                let stats = c
                    .stats()
                    .map_err(|e| format!("{}: stats failed: {e}", describe()))?;
                if stats.pending_deltas != 0 {
                    return Err(format!(
                        "{}: compact left {} deltas pending",
                        describe(),
                        stats.pending_deltas
                    ));
                }
                check_oracle_pairs(&mut c, oracle, seed ^ 11, &describe)?;
            }
        }
        Ok(())
    })();
    let fired = fault::fired();
    drop(fault_guard);

    // Shut down under an inert session too: zero unarmed traffic.
    {
        let _quiet = fault::arm(serve_inert_plan());
        server.request_shutdown();
        match handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return Err(format!("{}: accept loop error: {e}", describe())),
            Err(_) => return Err(format!("{}: accept loop panicked", describe())),
        }
    }
    result.map(|()| (sched.scenario, fired))
}

#[test]
fn server_chaos_battery() {
    install_quiet_panic_hook();
    let pool = graph_pool();

    if let Ok(seed) = std::env::var("SERVE_CHAOS_SEED") {
        let seed: u64 = seed.parse().expect("SERVE_CHAOS_SEED must be a u64");
        match run_serve_schedule(seed, &pool) {
            Ok((scenario, fired)) => {
                println!("serve seed {seed}: ok ({scenario:?}, fault fired: {fired})")
            }
            Err(msg) => panic!("serve chaos replay failed: {msg}"),
        }
        return;
    }

    let rounds: u64 = std::env::var("SERVE_CHAOS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(SERVE_DEFAULT_ROUNDS);
    let mut chain = 0x5e12e_c4a05u64;
    let mut failures = Vec::new();
    let mut by_scenario: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for _ in 0..rounds {
        let seed = splitmix64(&mut chain);
        match run_serve_schedule(seed, &pool) {
            Ok((scenario, fired)) => {
                let name = match scenario {
                    ServeScenario::Control => "control",
                    ServeScenario::SwapKill => "swap-kill",
                    ServeScenario::FrameKill => "frame-kill",
                    ServeScenario::FrameStall => "frame-stall",
                    ServeScenario::RecomputeKill => "recompute-kill",
                    ServeScenario::MergeKill => "merge-kill",
                    ServeScenario::CompactKill => "compact-kill",
                };
                let entry = by_scenario.entry(name).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += u64::from(fired);
            }
            Err(msg) => failures.push(msg),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {rounds} server chaos schedules failed (replay with SERVE_CHAOS_SEED=<seed>):\n{}",
        failures.len(),
        failures.join("\n")
    );
    println!("server chaos coverage over {rounds} schedules (scenario: fired/scheduled):");
    for (name, &(scheduled, fired)) in &by_scenario {
        println!("  {name:<16} {fired:>3}/{scheduled:<3}");
    }
    // Vacuity guard: at least one schedule of a fault-bearing scenario
    // must have actually fired its fault, or the serve sites are stale.
    let fired_count: u64 = by_scenario
        .iter()
        .filter(|(name, _)| **name != "control")
        .map(|(_, &(_, f))| f)
        .sum();
    assert!(
        fired_count >= 1,
        "no server chaos schedule fired its fault — serve site list out of date?"
    );
}
