//! Compressed sparse row (CSR) representation of a directed graph.
//!
//! The paper (§4.1) stores the graph as two flat arrays — an O(N) offset
//! array pointing into an O(M) adjacency array — because this is compact,
//! bandwidth-friendly, and ideal for traversal-heavy algorithms. SCC
//! detection needs *backward* reachability too, so [`CsrGraph`] additionally
//! keeps the reverse adjacency (in-edges) in the same format.
//!
//! The structure is immutable: the SCC algorithms never delete nodes or
//! edges; they overlay `Color`/`mark` arrays instead (paper §4.1).

use rayon::prelude::*;

/// Node identifier. 32 bits covers every instance in the paper's Table 1
/// except Friendster, whose analog here is scaled down anyway; using `u32`
/// halves the memory traffic of the adjacency arrays (perf-book: smaller
/// integers for indices).
pub type NodeId = u32;

/// A violated CSR structural invariant, reported by [`CsrGraph::validate`].
///
/// `direction` is `"out"` or `"in"` — which of the two adjacency
/// structures is broken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsrError {
    /// An offset array is not exactly `num_nodes + 1` entries long.
    OffsetLength {
        direction: &'static str,
        got: usize,
        want: usize,
    },
    /// An offset array does not start at 0.
    OffsetStart { direction: &'static str, got: usize },
    /// Offsets decrease at `index` (adjacency ranges must be ascending).
    NonMonotoneOffsets {
        direction: &'static str,
        index: usize,
    },
    /// The final offset disagrees with the target-array length.
    OffsetTargetMismatch {
        direction: &'static str,
        last: usize,
        targets: usize,
    },
    /// A target id at flat position `index` is `>= num_nodes`.
    TargetOutOfRange {
        direction: &'static str,
        index: usize,
        target: NodeId,
    },
    /// Forward and reverse structures disagree on the total edge count.
    EdgeCountMismatch { forward: usize, reverse: usize },
    /// Node `node`'s in-degree per the reverse structure disagrees with
    /// the number of forward edges pointing at it.
    DegreeMismatch {
        node: NodeId,
        forward: usize,
        reverse: usize,
    },
    /// Node `node`'s adjacency list is not sorted ascending — the
    /// invariant the binary-search membership probe relies on.
    UnsortedAdjacency {
        direction: &'static str,
        node: NodeId,
    },
    /// The reverse structure claims an edge `u -> v` the forward
    /// structure does not contain (detected by the membership probe).
    CrossEdgeMissing { u: NodeId, v: NodeId },
    /// A compressed degree array is not exactly `num_nodes` entries long.
    DegreeArrayLength {
        direction: &'static str,
        got: usize,
        want: usize,
    },
    /// A compressed adjacency stream for `node` is truncated, overlong,
    /// or does not decode to the declared degree.
    DecodeCorrupt {
        direction: &'static str,
        node: NodeId,
    },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::OffsetLength {
                direction,
                got,
                want,
            } => write!(f, "{direction}-offset array has {got} entries, want {want}"),
            CsrError::OffsetStart { direction, got } => {
                write!(f, "{direction}-offset array starts at {got}, want 0")
            }
            CsrError::NonMonotoneOffsets { direction, index } => {
                write!(f, "{direction}-offsets decrease at index {index}")
            }
            CsrError::OffsetTargetMismatch {
                direction,
                last,
                targets,
            } => write!(
                f,
                "final {direction}-offset {last} != {direction}-target count {targets}"
            ),
            CsrError::TargetOutOfRange {
                direction,
                index,
                target,
            } => write!(
                f,
                "{direction}-target {target} at flat index {index} is out of range"
            ),
            CsrError::EdgeCountMismatch { forward, reverse } => write!(
                f,
                "forward structure has {forward} edges but reverse has {reverse}"
            ),
            CsrError::DegreeMismatch {
                node,
                forward,
                reverse,
            } => write!(
                f,
                "node {node}: {forward} forward edges point at it but reverse in-degree is {reverse}"
            ),
            CsrError::UnsortedAdjacency { direction, node } => {
                write!(f, "{direction}-adjacency of node {node} is not sorted")
            }
            CsrError::CrossEdgeMissing { u, v } => write!(
                f,
                "reverse structure claims edge {u} -> {v} but the forward structure lacks it"
            ),
            CsrError::DegreeArrayLength {
                direction,
                got,
                want,
            } => write!(f, "{direction}-degree array has {got} entries, want {want}"),
            CsrError::DecodeCorrupt { direction, node } => write!(
                f,
                "{direction}-adjacency byte stream of node {node} is corrupt"
            ),
        }
    }
}

impl std::error::Error for CsrError {}

/// An immutable directed graph in CSR form with both forward (out-edge) and
/// reverse (in-edge) adjacency.
///
/// Construction is via [`CsrGraph::from_edges`] (which tolerates duplicate
/// edges and self-loops as-is) or [`crate::builder::GraphBuilder`] (which can
/// deduplicate and filter).
///
/// # Examples
///
/// ```
/// use swscc_graph::CsrGraph;
///
/// // 0 -> 1 -> 2 -> 0 cycle plus a pendant 2 -> 3
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.out_neighbors(2), &[0, 3]);
/// assert_eq!(g.in_neighbors(0), &[2]);
/// ```
#[derive(Clone, Debug)]
pub struct CsrGraph {
    num_nodes: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a graph with `num_nodes` nodes from a directed edge list.
    ///
    /// Edges are kept exactly as given (duplicates and self-loops included);
    /// use [`crate::builder::GraphBuilder`] for filtering. Each adjacency
    /// list ends up sorted by target id, which makes neighbor lookups
    /// binary-searchable and output deterministic.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Self {
        for &(u, v) in edges {
            assert!(
                (u as usize) < num_nodes && (v as usize) < num_nodes,
                "edge ({u}, {v}) out of range for {num_nodes} nodes"
            );
        }
        let (out_offsets, out_targets) = build_adjacency(num_nodes, edges.iter().copied());
        let (in_offsets, in_targets) =
            build_adjacency(num_nodes, edges.iter().map(|&(u, v)| (v, u)));
        CsrGraph {
            num_nodes,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbors of `n` (sorted by id).
    #[inline]
    pub fn out_neighbors(&self, n: NodeId) -> &[NodeId] {
        let n = n as usize;
        &self.out_targets[self.out_offsets[n]..self.out_offsets[n + 1]]
    }

    /// In-neighbors of `n` (sorted by id).
    #[inline]
    pub fn in_neighbors(&self, n: NodeId) -> &[NodeId] {
        let n = n as usize;
        &self.in_targets[self.in_offsets[n]..self.in_offsets[n + 1]]
    }

    /// Out-degree of `n`.
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_neighbors(n).len()
    }

    /// In-degree of `n`.
    #[inline]
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_neighbors(n).len()
    }

    /// `true` if the directed edge `u -> v` exists (binary search, O(log d)).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node ids `0..num_nodes`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes as NodeId
    }

    /// Parallel iterator over all node ids.
    pub fn par_nodes(&self) -> impl ParallelIterator<Item = NodeId> + '_ {
        (0..self.num_nodes as NodeId).into_par_iter()
    }

    /// Iterator over every directed edge `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Returns the transpose graph (every edge reversed). O(N+M) — it just
    /// swaps the two adjacency structures.
    pub fn transpose(&self) -> CsrGraph {
        CsrGraph {
            num_nodes: self.num_nodes,
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_targets.clone(),
            in_offsets: self.out_offsets.clone(),
            in_targets: self.out_targets.clone(),
        }
    }

    /// Builds the subgraph induced by `nodes` (which must be sorted,
    /// deduplicated, and in range). Returns the subgraph — whose node `i`
    /// corresponds to `nodes[i]` — so callers can map results back.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `nodes` is not sorted/deduplicated.
    ///
    /// # Examples
    ///
    /// ```
    /// use swscc_graph::CsrGraph;
    ///
    /// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
    /// let sub = g.induced_subgraph(&[0, 2, 3]);
    /// assert_eq!(sub.num_nodes(), 3);
    /// // kept edges: 2->0 and 2->3 (locally 1->0 and 1->2)
    /// assert_eq!(sub.num_edges(), 2);
    /// assert!(sub.has_edge(1, 0));
    /// assert!(sub.has_edge(1, 2));
    /// ```
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> CsrGraph {
        debug_assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "nodes must be sorted+dedup"
        );
        let mut local = vec![u32::MAX; self.num_nodes];
        for (i, &v) in nodes.iter().enumerate() {
            local[v as usize] = i as u32;
        }
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for (i, &v) in nodes.iter().enumerate() {
            for &u in self.out_neighbors(v) {
                let lu = local[u as usize];
                if lu != u32::MAX {
                    edges.push((i as NodeId, lu));
                }
            }
        }
        CsrGraph::from_edges(nodes.len(), &edges)
    }

    /// Assembles a graph directly from raw CSR arrays, validating every
    /// structural invariant first (see [`CsrGraph::validate`]). This is
    /// the untrusted-input counterpart of [`CsrGraph::from_edges`]: it
    /// never panics, it returns the violated invariant instead.
    pub fn from_raw_parts(
        num_nodes: usize,
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        in_offsets: Vec<usize>,
        in_targets: Vec<NodeId>,
    ) -> Result<CsrGraph, CsrError> {
        let g = CsrGraph {
            num_nodes,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        };
        g.validate()?;
        Ok(g)
    }

    /// Checks every CSR structural invariant in O(N + M log d):
    ///
    /// * both offset arrays have `num_nodes + 1` entries, start at 0, are
    ///   monotone non-decreasing, and end at their target-array length;
    /// * every target id is `< num_nodes`;
    /// * every adjacency list is sorted ascending — [`CsrGraph::has_edge`]
    ///   binary-searches, so an unsorted list would make membership
    ///   probes silently miss edges;
    /// * forward and reverse structures agree — same total edge count,
    ///   per node the reverse in-degree equals the number of forward
    ///   edges pointing at the node, and (via the membership probe) every
    ///   edge the reverse structure claims exists in the forward lists.
    ///
    /// Graphs built by [`CsrGraph::from_edges`] satisfy this by
    /// construction; loaders call it as a defense-in-depth check on
    /// deserialized bytes.
    pub fn validate(&self) -> Result<(), CsrError> {
        validate_adjacency("out", self.num_nodes, &self.out_offsets, &self.out_targets)?;
        validate_adjacency("in", self.num_nodes, &self.in_offsets, &self.in_targets)?;
        if self.out_targets.len() != self.in_targets.len() {
            return Err(CsrError::EdgeCountMismatch {
                forward: self.out_targets.len(),
                reverse: self.in_targets.len(),
            });
        }
        // Per-node agreement: count the in-degree each node *should* have
        // from the forward lists and compare with the reverse ranges.
        let mut indeg = vec![0usize; self.num_nodes];
        for &v in &self.out_targets {
            indeg[v as usize] += 1;
        }
        for (n, &forward) in indeg.iter().enumerate() {
            let reverse = self.in_offsets[n + 1] - self.in_offsets[n];
            if forward != reverse {
                return Err(CsrError::DegreeMismatch {
                    node: n as NodeId,
                    forward,
                    reverse,
                });
            }
        }
        // Content agreement: every reverse entry `u ∈ in(v)` must be
        // matched by a forward edge u -> v. Sortedness was validated
        // above, so the binary-search membership probe is sound here —
        // and it never materializes or rescans a hub's full list.
        for v in 0..self.num_nodes as NodeId {
            for &u in self.in_neighbors(v) {
                if !self.has_edge(u, v) {
                    return Err(CsrError::CrossEdgeMissing { u, v });
                }
            }
        }
        Ok(())
    }

    /// Approximate heap footprint in bytes (offset + target arrays).
    pub fn memory_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<usize>() * 2
            + self.out_targets.len() * std::mem::size_of::<NodeId>() * 2
    }
}

/// One direction's structural checks for [`CsrGraph::validate`].
fn validate_adjacency(
    direction: &'static str,
    num_nodes: usize,
    offsets: &[usize],
    targets: &[NodeId],
) -> Result<(), CsrError> {
    if offsets.len() != num_nodes + 1 {
        return Err(CsrError::OffsetLength {
            direction,
            got: offsets.len(),
            want: num_nodes + 1,
        });
    }
    if offsets[0] != 0 {
        return Err(CsrError::OffsetStart {
            direction,
            got: offsets[0],
        });
    }
    if let Some(i) = (1..offsets.len()).find(|&i| offsets[i] < offsets[i - 1]) {
        return Err(CsrError::NonMonotoneOffsets {
            direction,
            index: i,
        });
    }
    if offsets[num_nodes] != targets.len() {
        return Err(CsrError::OffsetTargetMismatch {
            direction,
            last: offsets[num_nodes],
            targets: targets.len(),
        });
    }
    if let Some((i, &t)) = targets
        .iter()
        .enumerate()
        .find(|&(_, &t)| t as usize >= num_nodes)
    {
        return Err(CsrError::TargetOutOfRange {
            direction,
            index: i,
            target: t,
        });
    }
    // Sortedness per list (non-decreasing: duplicates are legal). The
    // binary-search membership probe and the delta encoder both rely on
    // this, and `from_raw_parts` would otherwise accept lists on which
    // `has_edge` silently misses edges.
    for n in 0..num_nodes {
        let list = &targets[offsets[n]..offsets[n + 1]];
        if list.windows(2).any(|w| w[0] > w[1]) {
            return Err(CsrError::UnsortedAdjacency {
                direction,
                node: n as NodeId,
            });
        }
    }
    Ok(())
}

/// Counting-sort construction of one adjacency direction: O(N + M), no
/// per-node allocation, adjacency lists sorted by (source asc, target asc)
/// because edges are placed in two stable passes.
fn build_adjacency(
    num_nodes: usize,
    edges: impl Iterator<Item = (NodeId, NodeId)> + Clone,
) -> (Vec<usize>, Vec<NodeId>) {
    let mut offsets = vec![0usize; num_nodes + 1];
    for (u, _) in edges.clone() {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..num_nodes {
        offsets[i + 1] += offsets[i];
    }
    let mut targets = vec![0 as NodeId; offsets[num_nodes]];
    let mut cursor = offsets.clone();
    for (u, v) in edges {
        let c = &mut cursor[u as usize];
        targets[*c] = v;
        *c += 1;
    }
    // Sort each adjacency list for determinism and binary-searchability.
    // Lists are typically short (scale-free: most nodes have few neighbors),
    // so per-list sort is cheap; do it in parallel for the heavy hubs.
    let slices: Vec<(usize, usize)> = (0..num_nodes)
        .map(|i| (offsets[i], offsets[i + 1]))
        .collect();
    // Safety note: the ranges are disjoint by construction, so a parallel
    // mutable chunk iteration is expressible safely via split_at_mut-style
    // recursion; simplest is to sort via par_chunks over an index structure.
    parallel_sort_ranges(&mut targets, &slices);
    (offsets, targets)
}

/// Sorts each `[start, end)` range of `data` in parallel. Ranges must be
/// disjoint and ascending (guaranteed by CSR construction).
fn parallel_sort_ranges(data: &mut [NodeId], ranges: &[(usize, usize)]) {
    fn go(mut data: &mut [NodeId], base: usize, ranges: &[(usize, usize)]) {
        const SEQ_CUTOFF: usize = 64;
        if ranges.len() <= SEQ_CUTOFF {
            for &(s, e) in ranges {
                data[s - base..e - base].sort_unstable();
            }
            return;
        }
        let mid = ranges.len() / 2;
        let (left, right) = ranges.split_at(mid);
        let split_point = right[0].0;
        let (dl, dr) = std::mem::take(&mut data).split_at_mut(split_point - base);
        rayon::join(|| go(dl, base, left), || go(dr, split_point, right));
    }
    if !ranges.is_empty() {
        go(data, 0, ranges);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn single_node_no_edges() {
        let g = CsrGraph::from_edges(1, &[]);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn self_loop_kept() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.out_neighbors(0), &[0, 1]);
        assert_eq!(g.in_neighbors(0), &[0]);
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn duplicate_edges_kept() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
        assert_eq!(g.in_neighbors(1), &[0, 0]);
    }

    #[test]
    fn adjacency_sorted() {
        let g = CsrGraph::from_edges(5, &[(0, 4), (0, 2), (0, 3), (0, 1)]);
        assert_eq!(g.out_neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn in_out_consistency() {
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 3), (1, 3)];
        let g = CsrGraph::from_edges(4, &edges);
        // every out-edge appears as exactly one in-edge
        let mut outs: Vec<_> = g.edges().collect();
        let mut ins: Vec<_> = g
            .nodes()
            .flat_map(|v| g.in_neighbors(v).iter().map(move |&u| (u, v)))
            .collect();
        outs.sort_unstable();
        ins.sort_unstable();
        assert_eq!(outs, ins);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let t = g.transpose();
        assert!(t.has_edge(1, 0));
        assert!(t.has_edge(2, 1));
        assert!(!t.has_edge(0, 1));
        assert_eq!(t.num_edges(), g.num_edges());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let edges = [(0, 1), (1, 2), (2, 0), (0, 2)];
        let g = CsrGraph::from_edges(3, &edges);
        let tt = g.transpose().transpose();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = tt.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        CsrGraph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn edges_iterator_matches_input() {
        let mut edges = vec![(3u32, 1u32), (0, 2), (1, 1), (2, 3), (0, 1)];
        let g = CsrGraph::from_edges(4, &edges);
        let mut got: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        got.sort_unstable();
        assert_eq!(edges, got);
    }

    #[test]
    fn degrees_sum_to_edge_count() {
        let edges = [(0, 1), (0, 2), (1, 2), (2, 0), (2, 1), (2, 2)];
        let g = CsrGraph::from_edges(3, &edges);
        let out_sum: usize = g.nodes().map(|n| g.out_degree(n)).sum();
        let in_sum: usize = g.nodes().map(|n| g.in_degree(n)).sum();
        assert_eq!(out_sum, edges.len());
        assert_eq!(in_sum, edges.len());
    }

    #[test]
    fn large_star_graph() {
        // hub 0 -> all others; stresses the parallel range sort on one big list
        let n = 10_000u32;
        let edges: Vec<_> = (1..n).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        assert_eq!(g.out_degree(0), (n - 1) as usize);
        let nb = g.out_neighbors(0);
        assert!(nb.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(g.in_degree(1), 1);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let sub = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.num_nodes(), 3);
        let mut edges: Vec<_> = sub.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]); // 1->2, 1->3, 2->3
    }

    #[test]
    fn induced_subgraph_empty_and_full() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let empty = g.induced_subgraph(&[]);
        assert_eq!(empty.num_nodes(), 0);
        let full = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(full.num_edges(), 2);
    }

    #[test]
    fn induced_subgraph_preserves_self_loops() {
        let g = CsrGraph::from_edges(3, &[(1, 1), (0, 2)]);
        let sub = g.induced_subgraph(&[1]);
        assert_eq!(sub.num_edges(), 1);
        assert!(sub.has_edge(0, 0));
    }

    #[test]
    fn has_edge_negative() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn memory_bytes_positive() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.memory_bytes() > 0);
    }

    /// `from_edges` output always validates (defense-in-depth contract).
    #[test]
    fn from_edges_always_validates() {
        for edges in [
            vec![],
            vec![(0u32, 1u32), (1, 2), (2, 0)],
            vec![(0, 0), (0, 1), (0, 1), (2, 2)],
        ] {
            let g = CsrGraph::from_edges(3, &edges);
            g.validate().expect("constructed graph must validate");
        }
    }

    /// Well-formed raw parts round-trip through `from_raw_parts`.
    #[test]
    fn from_raw_parts_accepts_valid() {
        // 0 -> 1, 1 -> 0
        let g = CsrGraph::from_raw_parts(2, vec![0, 1, 2], vec![1, 0], vec![0, 1, 2], vec![1, 0])
            .expect("valid CSR");
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
    }

    #[test]
    fn validate_rejects_wrong_offset_length() {
        let err = CsrGraph::from_raw_parts(2, vec![0, 2], vec![1, 0], vec![0, 1, 2], vec![1, 0])
            .unwrap_err();
        assert!(matches!(
            err,
            CsrError::OffsetLength {
                direction: "out",
                got: 2,
                want: 3
            }
        ));
    }

    #[test]
    fn validate_rejects_nonzero_start() {
        let err = CsrGraph::from_raw_parts(2, vec![1, 1, 2], vec![1, 0], vec![0, 1, 2], vec![1, 0])
            .unwrap_err();
        assert!(matches!(err, CsrError::OffsetStart { got: 1, .. }));
    }

    #[test]
    fn validate_rejects_non_monotone_offsets() {
        let err = CsrGraph::from_raw_parts(2, vec![0, 2, 1], vec![1, 0], vec![0, 1, 2], vec![1, 0])
            .unwrap_err();
        assert!(matches!(
            err,
            CsrError::NonMonotoneOffsets {
                direction: "out",
                index: 2
            }
        ));
    }

    #[test]
    fn validate_rejects_offset_target_disagreement() {
        let err = CsrGraph::from_raw_parts(2, vec![0, 1, 1], vec![1, 0], vec![0, 1, 2], vec![1, 0])
            .unwrap_err();
        assert!(matches!(
            err,
            CsrError::OffsetTargetMismatch {
                last: 1,
                targets: 2,
                ..
            }
        ));
    }

    #[test]
    fn validate_rejects_out_of_range_target() {
        let err = CsrGraph::from_raw_parts(2, vec![0, 1, 2], vec![1, 9], vec![0, 1, 2], vec![1, 0])
            .unwrap_err();
        assert!(matches!(
            err,
            CsrError::TargetOutOfRange {
                direction: "out",
                index: 1,
                target: 9
            }
        ));
    }

    #[test]
    fn validate_rejects_edge_count_mismatch() {
        let err = CsrGraph::from_raw_parts(2, vec![0, 1, 2], vec![1, 0], vec![0, 0, 1], vec![1])
            .unwrap_err();
        assert!(matches!(
            err,
            CsrError::EdgeCountMismatch {
                forward: 2,
                reverse: 1
            }
        ));
    }

    #[test]
    fn validate_rejects_unsorted_adjacency() {
        // out-list of node 0 is [2, 1]: shape-valid but unsorted, which
        // would silently break the binary-search membership probe.
        let err = CsrGraph::from_raw_parts(
            3,
            vec![0, 2, 2, 2],
            vec![2, 1],
            vec![0, 0, 1, 2],
            vec![0, 0],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CsrError::UnsortedAdjacency {
                direction: "out",
                node: 0
            }
        ));
    }

    #[test]
    fn validate_rejects_cross_edge_mismatch() {
        // Forward: 0 -> 1, 0 -> 2. Reverse claims in(1) = [2] — counts
        // per node agree (one each), but 2 -> 1 does not exist forward.
        // Only the membership probe catches this.
        let err = CsrGraph::from_raw_parts(
            3,
            vec![0, 2, 2, 2],
            vec![1, 2],
            vec![0, 0, 1, 2],
            vec![2, 0],
        )
        .unwrap_err();
        assert!(matches!(err, CsrError::CrossEdgeMissing { u: 2, v: 1 }));
    }

    #[test]
    fn validate_rejects_forward_reverse_degree_disagreement() {
        // Forward says 0 -> 1 and 1 -> 0; reverse claims both in-edges
        // land on node 1.
        let err = CsrGraph::from_raw_parts(2, vec![0, 1, 2], vec![1, 0], vec![0, 0, 2], vec![0, 1])
            .unwrap_err();
        assert!(matches!(err, CsrError::DegreeMismatch { node: 0, .. }));
    }
}
