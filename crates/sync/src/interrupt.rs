//! Cooperative interruption: the one abort channel every kernel loop polls.
//!
//! An [`Interrupt`] is shared (via `Arc`) between a driver, its worker
//! threads, and every fixpoint kernel. It carries three ways a run can be
//! asked to stop:
//!
//! * **Cancellation** — `cancel()` called by the owner (or a `RunGuard`
//!   drop in `swscc-core`);
//! * **Deadline** — a wall-clock instant fixed at construction; `poll()`
//!   checks it, so deadline detection has the same superstep granularity
//!   as cancellation;
//! * **Non-convergence** — a fixpoint watchdog tripping after exceeding
//!   its round bound ([`Interrupt::trip_non_convergence`]).
//!
//! The protocol is strictly cooperative and monotone: once aborted, an
//! `Interrupt` stays aborted (first reason wins), and loops are expected
//! to check [`Interrupt::poll`] (or the cached [`Interrupt::is_aborted`])
//! once per round/superstep and bail out early. Nothing here unwinds or
//! signals — the *driver* translates the recorded reason into a typed
//! error after the kernels return.
//!
//! Under `--cfg model` the state flag is a model-instrumented atomic, so
//! every poll is a scheduling point: `model::explore` can interleave a
//! cancellation with every poll site a kernel has.

use crate::atomic::{AtomicU32, Ordering};
use crate::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was asked to stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// Explicit cooperative cancellation.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// A fixpoint loop exceeded its watchdog bound.
    NonConvergence,
}

const RUNNING: u32 = 0;
const CANCELLED: u32 = 1;
const DEADLINE: u32 = 2;
const NON_CONVERGENCE: u32 = 3;

fn decode(state: u32) -> Option<AbortReason> {
    match state {
        RUNNING => None,
        CANCELLED => Some(AbortReason::Cancelled),
        DEADLINE => Some(AbortReason::DeadlineExceeded),
        _ => Some(AbortReason::NonConvergence),
    }
}

/// Shared cooperative cancellation token + deadline + watchdog trip-wire.
pub struct Interrupt {
    /// RUNNING / CANCELLED / DEADLINE / NON_CONVERGENCE; monotone
    /// (RUNNING -> aborted once, first writer wins via CAS).
    state: AtomicU32,
    /// Absolute deadline; `None` = unbounded.
    deadline: Option<Instant>,
    /// Human-readable context for NonConvergence (loop name, round count).
    detail: Mutex<Option<String>>,
}

impl Interrupt {
    /// A token with no deadline that never aborts unless asked to.
    pub fn new() -> Arc<Self> {
        Arc::new(Interrupt {
            state: AtomicU32::new(RUNNING),
            deadline: None,
            detail: Mutex::new(None),
        })
    }

    /// A token whose `poll()` starts reporting [`AbortReason::DeadlineExceeded`]
    /// once `budget` wall-clock time has elapsed from now.
    ///
    /// Pathological budgets saturate instead of silently vanishing:
    /// `Instant + Duration::MAX` has no representation, and the old
    /// behaviour (`checked_add` → `None`) turned a nominally *bounded*
    /// run unbounded. Budgets too large to represent are clamped to
    /// [`Interrupt::SATURATED_BUDGET`] — far beyond any real deadline,
    /// but still a deadline the token actually carries.
    pub fn with_deadline(budget: Duration) -> Arc<Self> {
        let now = Instant::now();
        Arc::new(Interrupt {
            state: AtomicU32::new(RUNNING),
            deadline: now
                .checked_add(budget)
                .or_else(|| now.checked_add(Self::SATURATED_BUDGET)),
            detail: Mutex::new(None),
        })
    }

    /// The clamp applied by [`Interrupt::with_deadline`] when the
    /// requested budget overflows `Instant` arithmetic: ~30 years, which
    /// every supported platform can represent.
    pub const SATURATED_BUDGET: Duration = Duration::from_secs(60 * 60 * 24 * 365 * 30);

    /// The absolute deadline this token enforces, if any. `Some` for
    /// every token built by [`Interrupt::with_deadline`] (saturation
    /// keeps pathological budgets bounded); `None` only for
    /// [`Interrupt::new`].
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Requests cooperative cancellation. Idempotent; loses against an
    /// earlier abort (first reason wins).
    pub fn cancel(&self) {
        self.trip(CANCELLED);
    }

    /// Records a watchdog trip: `loop_name` exceeded `bound` rounds.
    /// First abort reason wins; the detail string is only stored by the
    /// winning trip.
    pub fn trip_non_convergence(&self, loop_name: &str, bound: usize) {
        if self.trip(NON_CONVERGENCE) {
            *self.detail.lock() = Some(format!(
                "fixpoint `{loop_name}` exceeded its watchdog bound of {bound} rounds"
            ));
        }
    }

    fn trip(&self, to: u32) -> bool {
        // ordering: Relaxed suffices — the flag is a pure go/no-go signal
        // with no data published through it (the NonConvergence detail
        // string travels under the `detail` Mutex, and every consumer
        // reads results only after a scope join). CAS keeps the
        // transition monotone: first abort reason wins.
        self.state
            .compare_exchange(RUNNING, to, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// The poll every kernel loop calls once per round/superstep: checks
    /// the abort flag, then the deadline. Returns the abort reason if the
    /// run should stop.
    pub fn poll(&self) -> Option<AbortReason> {
        // ordering: Relaxed — see `trip`; a stale RUNNING read merely
        // delays the bail-out by one round, which the cooperative
        // protocol tolerates by design.
        if let Some(r) = decode(self.state.load(Ordering::Relaxed)) {
            return Some(r);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.trip(DEADLINE);
                return Some(AbortReason::DeadlineExceeded);
            }
        }
        None
    }

    /// `poll().is_some()`, for loops that only need a boolean.
    pub fn is_aborted(&self) -> bool {
        self.poll().is_some()
    }

    /// The recorded abort reason without the deadline side effect (what a
    /// driver reads at a phase boundary after kernels returned).
    pub fn reason(&self) -> Option<AbortReason> {
        // ordering: Relaxed — see `trip`.
        decode(self.state.load(Ordering::Relaxed))
    }

    /// Context for a NonConvergence abort (loop name and bound).
    pub fn detail(&self) -> Option<String> {
        self.detail.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_running() {
        let i = Interrupt::new();
        assert_eq!(i.poll(), None);
        assert!(!i.is_aborted());
        assert_eq!(i.reason(), None);
    }

    #[test]
    fn cancel_is_sticky() {
        let i = Interrupt::new();
        i.cancel();
        assert_eq!(i.poll(), Some(AbortReason::Cancelled));
        i.cancel();
        assert_eq!(i.reason(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn first_reason_wins() {
        let i = Interrupt::new();
        i.trip_non_convergence("wcc", 42);
        i.cancel();
        assert_eq!(i.reason(), Some(AbortReason::NonConvergence));
        assert!(i.detail().unwrap().contains("wcc"));
    }

    #[test]
    fn zero_deadline_fires_immediately() {
        let i = Interrupt::with_deadline(Duration::ZERO);
        assert_eq!(i.poll(), Some(AbortReason::DeadlineExceeded));
        assert_eq!(i.reason(), Some(AbortReason::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let i = Interrupt::with_deadline(Duration::from_secs(3600));
        assert_eq!(i.poll(), None);
    }

    #[test]
    fn pathological_budget_saturates_instead_of_vanishing() {
        for budget in [
            Duration::MAX,
            Duration::MAX - Duration::from_nanos(1),
            Duration::from_secs(u64::MAX),
        ] {
            let i = Interrupt::with_deadline(budget);
            assert!(
                i.deadline().is_some(),
                "budget {budget:?} must saturate to a real deadline, not drop it"
            );
            assert_eq!(
                i.poll(),
                None,
                "saturated deadline must not fire immediately"
            );
        }
        // Sane budgets are untouched and still bounded.
        let i = Interrupt::with_deadline(Duration::from_secs(1));
        assert!(i.deadline().is_some());
    }

    #[test]
    fn cancel_observed_across_threads() {
        let i = Interrupt::new();
        crate::thread::scope(|s| {
            let t = {
                let i = Arc::clone(&i);
                s.spawn(move || {
                    while !i.is_aborted() {
                        crate::hint::spin_loop();
                    }
                    i.reason()
                })
            };
            i.cancel();
            assert_eq!(t.join().unwrap(), Some(AbortReason::Cancelled));
        });
    }
}
