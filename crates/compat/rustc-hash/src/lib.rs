//! Offline drop-in subset of `rustc-hash`.
//!
//! A fast non-cryptographic multiply-fold hasher in the FxHash family plus
//! the `FxHashMap`/`FxHashSet` aliases. Hash *values* need not match the
//! upstream crate (nothing in this workspace persists hashes); only the
//! speed-over-DoS-resistance trade-off and the API are preserved.

use std::hash::{BuildHasherDefault, Hasher};

pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-rotate hasher (the rustc FxHash construction).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn hash_distinguishes_values() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let h = |x: u64| bh.hash_one(x);
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(1 << 32));
    }
}
