//! Live-residue vertex subset: a dense ↔ sparse hybrid iteration domain.
//!
//! The paper's premise (§2.2, §3.3) is that after the giant-SCC peel the
//! surviving residue is a small fraction of N — yet a kernel that iterates
//! `0..num_nodes` and filters on `alive()` still pays O(N) per invocation.
//! GBBS-style frontier abstractions (Dhulipala, Blelloch, Shun 2018) fix
//! this with a dense/sparse `vertexSubset`: kernels cost O(|subset|), not
//! O(N). [`LiveSet`] is that abstraction for the *alive* nodes:
//!
//! * **Dense** mode (the initial state) iterates the full `0..universe`
//!   range — O(1) to build, same cost as the pre-existing full sweeps.
//! * **Sparse** mode iterates a compact candidate list that is maintained
//!   as a *superset* of the alive nodes (deletion is lazy: resolving a node
//!   does not touch the list, and `alive()` filtering inside each kernel
//!   already skips it). Because marks are monotone — nodes die and never
//!   revive — the superset invariant holds without any bookkeeping on the
//!   hot resolve path.
//!
//! [`LiveSet::maybe_compact`] rebuilds the candidate list in parallel at
//! phase boundaries. Under [`CompactionPolicy::Auto`] a rebuild runs only
//! when the live count has dropped to at most half the candidate count, so
//! total compaction work over a whole run telescopes to O(2·N) while every
//! sweep in between touches at most 2·|residue| slots.

use rayon::prelude::*;
use swscc_sync::RwLock;

/// When the owner of a [`LiveSet`] should compact it at a phase boundary.
///
/// `Never` keeps the set dense forever — every sweep stays O(N), byte-for-
/// byte the pre-LiveSet behavior (the ablation baseline). `Always` rebuilds
/// at every boundary (the candidate list is always exact). `Auto` applies
/// the halving rule described in the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompactionPolicy {
    /// Compact when live nodes are at most half the current candidates.
    #[default]
    Auto,
    /// Compact at every phase boundary.
    Always,
    /// Never compact: stay dense (full-sweep ablation baseline).
    Never,
}

/// The hybrid dense/sparse set of candidate-alive vertices.
///
/// All iteration helpers run on the ambient rayon pool and dispatch on the
/// current representation; interior locking (one `RwLock` around the
/// optional sparse list) makes the set shareable by `&` reference alongside
/// the rest of the algorithm state. Kernels only ever take brief read
/// locks; compaction (the sole writer) happens between kernels.
pub struct LiveSet {
    universe: usize,
    /// `None` = dense (iterate `0..universe`); `Some(list)` = sparse
    /// candidate list, ascending, a superset of the alive nodes.
    sparse: RwLock<Option<Vec<u32>>>,
}

impl LiveSet {
    /// A dense set over `0..universe`.
    pub fn new_dense(universe: usize) -> Self {
        LiveSet {
            universe,
            sparse: RwLock::new(None),
        }
    }

    /// Size of the underlying vertex id space.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// `true` once the set has been compacted to a sparse list.
    pub fn is_sparse(&self) -> bool {
        self.sparse.read().is_some()
    }

    /// Number of candidate slots a sweep will touch (`universe` while
    /// dense, the list length once sparse).
    pub fn candidates(&self) -> usize {
        match &*self.sparse.read() {
            Some(list) => list.len(),
            None => self.universe,
        }
    }

    /// A snapshot of the candidate ids (ascending). Intended for tests and
    /// diagnostics — O(candidates).
    pub fn candidate_vec(&self) -> Vec<u32> {
        match &*self.sparse.read() {
            Some(list) => list.clone(),
            None => (0..self.universe as u32).collect(),
        }
    }

    /// Runs `f` over every candidate in parallel, collecting the `Some`
    /// results (in candidate order).
    pub fn par_filter_map<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u32) -> Option<T> + Sync + Send,
    {
        match &*self.sparse.read() {
            Some(list) => list.par_iter().copied().filter_map(f).collect(),
            None => (0..self.universe as u32)
                .into_par_iter()
                .filter_map(f)
                .collect(),
        }
    }

    /// The candidates satisfying `pred`, in ascending candidate order.
    pub fn par_collect<F>(&self, pred: F) -> Vec<u32>
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        self.par_filter_map(|v| pred(v).then_some(v))
    }

    /// Runs `f` on every candidate in parallel.
    pub fn par_for_each<F>(&self, f: F)
    where
        F: Fn(u32) + Sync + Send,
    {
        match &*self.sparse.read() {
            Some(list) => list.par_iter().copied().for_each(f),
            None => (0..self.universe as u32).into_par_iter().for_each(f),
        }
    }

    /// Some candidate satisfying `pred`, searched in parallel with early
    /// termination; *which* match is unspecified.
    pub fn par_find_any<F>(&self, pred: F) -> Option<u32>
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        match &*self.sparse.read() {
            Some(list) => list.par_iter().copied().find_any(|&v| pred(v)),
            None => (0..self.universe as u32)
                .into_par_iter()
                .find_any(|&v| pred(v)),
        }
    }

    /// The candidate maximizing `key` among those satisfying `pred`.
    pub fn par_max_by_key<K, P, F>(&self, pred: P, key: F) -> Option<u32>
    where
        K: Ord + Send,
        P: Fn(u32) -> bool + Sync + Send,
        F: Fn(u32) -> K + Sync + Send,
    {
        match &*self.sparse.read() {
            Some(list) => list
                .par_iter()
                .copied()
                .filter(|&v| pred(v))
                .max_by_key(|&v| key(v)),
            None => (0..self.universe as u32)
                .into_par_iter()
                .filter(|&v| pred(v))
                .max_by_key(|&v| key(v)),
        }
    }

    /// Runs `f` with the sparse candidate list, or `None` while dense.
    /// Lets callers probe random candidates in O(1) (pivot sampling)
    /// without copying the list; the read lock is held for the duration.
    pub fn with_sparse<R>(&self, f: impl FnOnce(Option<&[u32]>) -> R) -> R {
        f(self.sparse.read().as_deref())
    }

    /// Unconditionally rebuilds the candidate list to exactly
    /// `{v | live(v)}`, in parallel. O(candidates).
    pub fn compact<F>(&self, live: F)
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        let list = self.par_collect(live);
        *self.sparse.write() = Some(list);
    }

    /// Applies `policy` at a phase boundary; returns whether a compaction
    /// ran. `live_count` is the caller's current number of live vertices
    /// (an O(1) counter in practice — passing it in keeps the Auto decision
    /// free of an extra O(candidates) scan).
    pub fn maybe_compact<F>(&self, policy: CompactionPolicy, live_count: usize, live: F) -> bool
    where
        F: Fn(u32) -> bool + Sync + Send,
    {
        let run = match policy {
            CompactionPolicy::Never => false,
            CompactionPolicy::Always => true,
            // Halving rule: the rebuild's O(candidates) cost is charged to
            // the ≥ candidates/2 nodes that died since the last rebuild.
            CompactionPolicy::Auto => live_count.saturating_mul(2) <= self.candidates(),
        };
        if run {
            self.compact(live);
        }
        run
    }
}

impl std::fmt::Debug for LiveSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSet")
            .field("universe", &self.universe)
            .field("sparse", &self.is_sparse())
            .field("candidates", &self.candidates())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool;
    use swscc_sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn dense_iterates_universe() {
        let s = LiveSet::new_dense(10);
        assert!(!s.is_sparse());
        assert_eq!(s.candidates(), 10);
        assert_eq!(s.par_collect(|v| v % 2 == 0), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn compact_switches_to_sparse_and_filters() {
        let s = LiveSet::new_dense(100);
        s.compact(|v| v < 10);
        assert!(s.is_sparse());
        assert_eq!(s.candidates(), 10);
        assert_eq!(s.candidate_vec(), (0..10).collect::<Vec<_>>());
        // Sweeps now touch only the 10 candidates.
        let touched = AtomicUsize::new(0);
        s.par_for_each(|_| {
            touched.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(touched.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn recompaction_shrinks_monotonically() {
        let s = LiveSet::new_dense(64);
        s.compact(|v| v < 32);
        s.compact(|v| v < 7);
        assert_eq!(s.candidate_vec(), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn auto_policy_halving_rule() {
        let s = LiveSet::new_dense(100);
        // 60 live of 100 candidates: above half, no compaction.
        assert!(!s.maybe_compact(CompactionPolicy::Auto, 60, |v| v < 60));
        assert!(!s.is_sparse());
        // 50 live of 100: at the threshold, compacts.
        assert!(s.maybe_compact(CompactionPolicy::Auto, 50, |v| v < 50));
        assert_eq!(s.candidates(), 50);
        // 30 live of 50: compacts again.
        assert!(s.maybe_compact(CompactionPolicy::Auto, 25, |v| v < 25));
        assert_eq!(s.candidates(), 25);
        // 20 live of 25: above half, stays.
        assert!(!s.maybe_compact(CompactionPolicy::Auto, 20, |v| v < 20));
        assert_eq!(s.candidates(), 25);
    }

    #[test]
    fn never_policy_stays_dense() {
        let s = LiveSet::new_dense(100);
        assert!(!s.maybe_compact(CompactionPolicy::Never, 0, |_| false));
        assert!(!s.is_sparse());
        assert_eq!(s.candidates(), 100);
    }

    #[test]
    fn always_policy_compacts_every_time() {
        let s = LiveSet::new_dense(10);
        assert!(s.maybe_compact(CompactionPolicy::Always, 10, |_| true));
        assert!(s.is_sparse());
        assert_eq!(s.candidates(), 10);
        assert!(s.maybe_compact(CompactionPolicy::Always, 3, |v| v < 3));
        assert_eq!(s.candidate_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn filter_map_and_find_and_max() {
        let s = LiveSet::new_dense(50);
        s.compact(|v| v >= 40);
        assert_eq!(
            s.par_filter_map(|v| (v % 2 == 0).then(|| v * 10)),
            vec![400, 420, 440, 460, 480]
        );
        let hit = s.par_find_any(|v| v > 45).expect("exists");
        assert!(hit > 45 && hit < 50);
        assert_eq!(s.par_max_by_key(|v| v != 49, |v| v), Some(48));
        assert_eq!(s.par_max_by_key(|_| false, |v| v), None);
    }

    #[test]
    fn with_sparse_exposes_list_only_when_sparse() {
        let s = LiveSet::new_dense(5);
        s.with_sparse(|list| assert!(list.is_none()));
        s.compact(|v| v == 3);
        s.with_sparse(|list| assert_eq!(list, Some(&[3u32][..])));
    }

    #[test]
    fn empty_universe() {
        let s = LiveSet::new_dense(0);
        assert_eq!(s.candidates(), 0);
        assert!(s.par_collect(|_| true).is_empty());
        assert_eq!(s.par_find_any(|_| true), None);
        s.compact(|_| true);
        assert_eq!(s.candidates(), 0);
    }

    #[test]
    fn parallel_sweeps_match_sequential() {
        for threads in [1, 2, 4] {
            pool::with_pool(threads, || {
                let s = LiveSet::new_dense(1000);
                s.compact(|v| v % 3 == 0);
                let got = s.par_collect(|v| v % 2 == 0);
                let want: Vec<u32> = (0..1000).filter(|v| v % 3 == 0 && v % 2 == 0).collect();
                assert_eq!(got, want, "threads={threads}");
                assert_eq!(s.par_filter_map(Some).len(), s.candidates());
            });
        }
    }
}
