//! Bounded admission: the gate that turns overload into a typed
//! `Overloaded` reply instead of an unbounded queue.
//!
//! The service's availability contract is "degrade, don't die": when
//! more queries arrive than the configured concurrency allows, the
//! excess is *shed at the door* with a retry hint, so admitted requests
//! keep their latency budget and the process keeps a bounded footprint.
//! The gate is a single occupancy counter — there is deliberately no
//! wait queue, because a queue under sustained overload only converts
//! shed responses into deadline misses.

use swscc_sync::atomic::{AtomicUsize, Ordering};

/// Concurrency gate with a hard occupancy cap.
pub struct AdmissionGate {
    max_inflight: usize,
    inflight: AtomicUsize,
}

impl AdmissionGate {
    /// A gate admitting at most `max_inflight` concurrent requests.
    /// A cap of 0 is clamped to 1 so the service can always make
    /// progress one request at a time.
    pub fn new(max_inflight: usize) -> AdmissionGate {
        AdmissionGate {
            max_inflight: max_inflight.max(1),
            inflight: AtomicUsize::new(0),
        }
    }

    /// Tries to admit one request. `None` means "shed": the caller
    /// replies `Overloaded` and the request never touches a snapshot.
    /// The returned permit releases its slot on drop — including during
    /// a panic unwind, so a crashed handler cannot leak capacity.
    pub fn try_admit(&self) -> Option<Permit<'_>> {
        // ordering: Relaxed throughout — the counter is a pure occupancy
        // gate; no data is published through it (request state travels
        // via the EpochCell snapshot and each handler's own stack). The
        // CAS loop guarantees the cap is never exceeded regardless of
        // ordering strength.
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current >= self.max_inflight {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit { gate: self }),
                Err(seen) => current = seen,
            }
        }
    }

    /// Requests currently holding a permit (diagnostic; racy by
    /// nature).
    pub fn inflight(&self) -> usize {
        // ordering: Relaxed — see `try_admit`; a diagnostic read.
        self.inflight.load(Ordering::Relaxed)
    }

    /// The configured cap.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }
}

/// An admitted request's slot; releasing is automatic and
/// unwind-safe (Drop).
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        // ordering: Relaxed — see `AdmissionGate::try_admit`.
        self.gate.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_cap_then_sheds() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_admit();
        let b = gate.try_admit();
        assert!(a.is_some() && b.is_some());
        assert!(gate.try_admit().is_none(), "third must shed");
        drop(a);
        let c = gate.try_admit();
        assert!(c.is_some(), "released slot is reusable");
        drop(b);
        assert_eq!(gate.inflight(), 1);
        drop(c);
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn zero_cap_clamps_to_one() {
        let gate = AdmissionGate::new(0);
        assert_eq!(gate.max_inflight(), 1);
        let p = gate.try_admit();
        assert!(p.is_some());
        assert!(gate.try_admit().is_none());
    }

    #[test]
    fn permit_released_on_unwind() {
        let gate = AdmissionGate::new(1);
        // recovery: deliberate panic inside a held permit — the test
        // asserts the Drop-based release survives unwinding.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = gate.try_admit().unwrap();
            panic!("handler died");
        }));
        assert!(result.is_err());
        assert_eq!(gate.inflight(), 0, "unwound permit must release its slot");
        assert!(gate.try_admit().is_some());
    }

    #[test]
    fn cap_holds_under_contention() {
        const CAP: usize = 4;
        let gate = AdmissionGate::new(CAP);
        let peak = AtomicUsize::new(0);
        let admitted = AtomicUsize::new(0);
        swscc_sync::thread::scope(|s| {
            for _ in 0..8 {
                let (gate, peak, admitted) = (&gate, &peak, &admitted);
                s.spawn(move || {
                    for _ in 0..200 {
                        if let Some(_permit) = gate.try_admit() {
                            // ordering: Relaxed — test-local counters;
                            // correctness is asserted after the join.
                            admitted.fetch_add(1, Ordering::Relaxed);
                            let now = gate.inflight();
                            peak.fetch_max(now, Ordering::Relaxed);
                            std::hint::black_box(now);
                        }
                    }
                });
            }
        });
        // ordering: Relaxed — read after scope join.
        assert!(peak.load(Ordering::Relaxed) <= CAP, "cap exceeded");
        assert!(admitted.load(Ordering::Relaxed) > 0, "vacuous test");
    }
}
