//! WCC-kernel ablation (extension): Algorithm 7's label propagation vs a
//! lock-free union-find.
//!
//! §5 pins Method 2's CA-road regression partly on the WCC step: "the
//! algorithm requires a large number of iterations for convergence when
//! applied on non-small-world graphs". Label propagation costs
//! O(diameter) rounds over the residue; a concurrent disjoint-set forest
//! is diameter-independent. This harness times both kernels at the point
//! Method 2 invokes them (post-peel, post-Trim′), on every dataset analog.

use std::time::Instant;
use swscc_bench::{print_header, reps, scale};
use swscc_core::fwbw::parallel::par_fwbw;
use swscc_core::state::{AlgoState, INITIAL_COLOR};
use swscc_core::trim::par_trim;
use swscc_core::trim2::par_trim2;
use swscc_core::wcc::{par_wcc, par_wcc_unionfind, WccOutcome};
use swscc_core::SccConfig;
use swscc_graph::datasets::Dataset;
use swscc_parallel::pool::with_pool;

fn measure(
    d: Dataset,
    cfg: &SccConfig,
    kernel: impl Fn(&AlgoState<'_>) -> WccOutcome + Sync,
) -> (f64, usize, usize) {
    let g = d.load(scale(), 42);
    let mut best = f64::INFINITY;
    let mut groups = 0;
    let mut iterations = 0;
    for _ in 0..reps() {
        let (ms, gr, it) = with_pool(cfg.threads, || {
            let state = AlgoState::new(&g);
            par_trim(&state);
            par_fwbw(&state, cfg, INITIAL_COLOR);
            par_trim(&state);
            par_trim2(&state);
            par_trim(&state);
            let t0 = Instant::now();
            let out = kernel(&state);
            (
                t0.elapsed().as_secs_f64() * 1e3,
                out.groups.len(),
                out.iterations,
            )
        });
        best = best.min(ms);
        groups = gr;
        iterations = it;
    }
    (best, groups, iterations)
}

fn main() {
    print_header("WCC ablation: label propagation (Alg. 7) vs union-find");
    println!(
        "{:<9} {:>15} {:>12} {:>15} {:>8} {:>7}",
        "name", "label-prop (ms)", "iterations", "union-find (ms)", "ratio", "groups"
    );
    let cfg = SccConfig::default();
    for d in Dataset::all() {
        let (t_lp, g_lp, iters) = measure(d, &cfg, par_wcc);
        let (t_uf, g_uf, _) = measure(d, &cfg, par_wcc_unionfind);
        assert_eq!(g_lp, g_uf, "{}: kernels disagree on group count", d.name());
        println!(
            "{:<9} {:>15.2} {:>12} {:>15.2} {:>7.2}x {:>7}",
            d.name(),
            t_lp,
            iters,
            t_uf,
            t_lp / t_uf,
            g_lp
        );
    }
    println!("\npaper §5: label-prop WCC iteration count blows up on non-small-world graphs");
}
