//@ path: crates/graph/src/compressed.rs
//! Known-bad stand-in for the neighbor-decode hot path (the virtual
//! path aims the decode rule here).

pub fn per_edge_alloc(bytes: &[u8]) -> Vec<u32> {
    let mut out = Vec::new(); //~ decode
    for b in bytes {
        out.push(*b as u32);
    }
    out
}

pub fn macro_alloc(n: usize) -> Vec<u8> {
    vec![0u8; n] //~ decode
}

pub fn collect_alloc(bytes: &[u8]) -> Vec<u32> {
    bytes.iter().map(|b| *b as u32).collect() //~ decode
}

pub fn cold_path_is_fine(n: usize) -> Vec<u8> {
    // decode: construction-time buffer, never on the per-edge loop.
    vec![0u8; n]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_allocate() {
        let _v: Vec<u32> = Vec::new();
    }
}
