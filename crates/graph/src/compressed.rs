//! Byte-delta compressed CSR: the VarInt difference-encoded adjacency
//! backend (GBBS playbook — Dhulipala et al., arXiv 1805.05208).
//!
//! Each vertex's sorted neighbor list is one byte stream: first a VarInt
//! **degree**, then the first neighbor as a **zigzag-coded signed delta
//! from the vertex id** (neighbors cluster around their vertex in
//! small-world orderings, so this delta is usually tiny), then every
//! subsequent neighbor as the raw non-negative delta from its predecessor
//! (lists are ascending; duplicate edges encode as delta 0). A `u32`
//! byte-offset array per direction completes the structure — no separate
//! degree array, so per-vertex overhead is 4 bytes + ~1 degree byte
//! instead of the raw layout's 8-byte offset.
//!
//! Decoding is *chunk-granular and allocation-free*: the
//! [`GraphView::for_each_neighbor_while`] impl decodes one VarInt at a
//! time directly from the byte stream and feeds each id to the caller's
//! closure, so the traversal kernels never materialize a neighbor slice.
//! Callers that do need a slice use [`GraphView::copy_neighbors`] with a
//! reusable per-worker buffer.
//!
//! Construction paths:
//! * [`CompressedCsr::from_csr`] — exact re-encode of an existing raw
//!   graph (duplicates and self-loops preserved).
//! * [`CompressedCsr::from_edge_stream`] — *streaming* construction that
//!   never materializes the uncompressed CSR: the caller replays its edge
//!   stream once per shard, and each shard sorts, deduplicates, and
//!   encodes only the vertices in its node range. Peak transient memory
//!   is O(M / shards) edge pairs, which is what lets the generators build
//!   corpora several times larger than the raw path in the same budget.

use crate::bfs::Direction;
use crate::csr::{CsrError, CsrGraph, NodeId};
use crate::view::{GraphView, MemoryFootprint};

/// Appends `x` to `buf` as a little-endian base-128 VarInt (LEB128).
#[inline]
pub(crate) fn encode_varint(buf: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        buf.push((x as u8) | 0x80);
        x >>= 7;
    }
    buf.push(x as u8);
}

/// Decodes one VarInt at `*pos`, advancing `*pos` past it.
///
/// # Panics
///
/// Panics (via slice indexing) on a truncated stream; encoded data is
/// validated up front ([`CompressedCsr::from_raw_parts`]) so the hot
/// decode loop carries no per-edge error branch.
#[inline]
pub(crate) fn decode_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = data[*pos];
        *pos += 1;
        x |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return x;
        }
        shift += 7;
    }
}

/// [`decode_varint`] without the per-byte bounds check: the traversal
/// hot path, where the check (and its panic branch) costs a measurable
/// fraction of the per-edge decode.
///
/// # Safety
///
/// A complete VarInt must start at `data[*pos]`. Every stream handed to
/// the decode loops satisfies this: `push_list` emits well-formed
/// VarInts by construction, and untrusted input is fully decoded by
/// `CompressedAdjacency::validate` (exact byte consumption per list)
/// before a `CompressedCsr` exists.
///
/// Small-world deltas are overwhelmingly single-byte, so that case is
/// the inlined straight-line path; the multi-byte continuation is
/// `#[cold]` and out of line to keep the traversal loop's branch and
/// i-cache footprint minimal.
// SAFETY: [inv:varint-validated] caller contract above — `*pos` must
// start a complete VarInt.
#[inline(always)]
unsafe fn decode_varint_unchecked(data: &[u8], pos: &mut usize) -> u64 {
    // SAFETY: [inv:varint-validated] the caller guarantees a complete
    // VarInt at `*pos`, so its first byte is in bounds.
    let b = unsafe { *data.get_unchecked(*pos) };
    *pos += 1;
    if b < 0x80 {
        return u64::from(b);
    }
    // SAFETY: [inv:varint-validated] same VarInt, continuation bytes.
    unsafe { decode_varint_unchecked_slow(data, pos, u64::from(b & 0x7f)) }
}

/// Multi-byte continuation of [`decode_varint_unchecked`].
///
/// # Safety
///
/// Same contract: the VarInt continuing at `*pos` must be complete and
/// in bounds.
// SAFETY: [inv:varint-validated] caller contract above.
#[cold]
unsafe fn decode_varint_unchecked_slow(data: &[u8], pos: &mut usize, mut x: u64) -> u64 {
    let mut shift = 7u32;
    loop {
        // SAFETY: [inv:varint-validated] the caller guarantees the
        // VarInt's continuation bytes up to and including its terminator
        // are in bounds.
        let b = unsafe { *data.get_unchecked(*pos) };
        *pos += 1;
        x |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return x;
        }
        shift += 7;
    }
}

/// Maps a signed delta to an unsigned VarInt payload (zigzag coding:
/// 0, -1, 1, -2, ... → 0, 1, 2, 3, ...), so small negative first-neighbor
/// deltas stay one byte.
#[inline]
pub(crate) fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub(crate) fn zigzag_decode(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// One direction's compressed adjacency: `u32` byte offsets plus the
/// encoded stream (degree VarInt, then the delta-coded list).
#[derive(Clone, Debug, Default)]
struct CompressedAdjacency {
    /// `num_nodes + 1` byte offsets into `data`. `u32` caps the encoded
    /// payload at 4 GiB per direction (~2 G edges at typical 2 B/edge) —
    /// asserted during construction, validated on load.
    offsets: Vec<u32>,
    /// The concatenated per-vertex VarInt streams.
    data: Vec<u8>,
}

impl CompressedAdjacency {
    /// An empty structure ready for appending (construction cold path).
    fn with_nodes(expected_nodes: usize) -> Self {
        // decode: construction cold path — builds the arrays the hot
        // decode loops later stream from; never runs inside a traversal.
        CompressedAdjacency {
            offsets: {
                let mut v = Vec::with_capacity(expected_nodes + 1);
                v.push(0);
                v
            },
            data: Vec::new(),
        }
    }

    /// Appends vertex `v`'s sorted neighbor list. Must be called for
    /// vertices in ascending order with no gaps.
    fn push_list(&mut self, v: NodeId, list: impl ExactSizeIterator<Item = NodeId>) {
        encode_varint(&mut self.data, list.len() as u64);
        let mut prev: Option<NodeId> = None;
        for t in list {
            match prev {
                None => encode_varint(&mut self.data, zigzag_encode(t as i64 - v as i64)),
                Some(p) => {
                    debug_assert!(t >= p, "neighbor lists must be ascending");
                    encode_varint(&mut self.data, u64::from(t - p));
                }
            }
            prev = Some(t);
        }
        assert!(
            self.data.len() <= u32::MAX as usize,
            "compressed adjacency exceeds the 4 GiB u32-offset cap"
        );
        self.offsets.push(self.data.len() as u32);
    }

    /// Degree of `n`: one VarInt decode at the list head.
    #[inline]
    fn degree(&self, n: NodeId) -> usize {
        let mut pos = self.offsets[n as usize] as usize;
        decode_varint(&self.data, &mut pos) as usize
    }

    /// Streams `n`'s neighbors in ascending order, stopping when `f`
    /// returns `false`. The hot decode loop: one unchecked VarInt per
    /// edge, no allocation, no per-byte bounds check — the up-front
    /// validation (`validate`, run on every untrusted load) proved each
    /// list decodes exactly within its offset window, and `push_list`
    /// streams are well-formed by construction.
    #[inline]
    fn for_each_while(&self, n: NodeId, mut f: impl FnMut(NodeId) -> bool) {
        let mut pos = self.offsets[n as usize] as usize;
        let data = self.data.as_slice();
        // SAFETY: [inv:varint-validated] `offsets[n]` starts a validated
        // list: a degree VarInt followed by exactly `deg` delta VarInts,
        // all within `data`.
        let deg = unsafe { decode_varint_unchecked(data, &mut pos) };
        if deg == 0 {
            return;
        }
        // SAFETY: [inv:varint-validated] as above — `deg >= 1` guarantees
        // the first delta.
        let first = unsafe { decode_varint_unchecked(data, &mut pos) };
        let mut cur = (n as i64 + zigzag_decode(first)) as u32;
        if !f(cur) {
            return;
        }
        for _ in 1..deg {
            // SAFETY: [inv:varint-validated] as above — deltas 2..=deg of
            // the validated list.
            cur += unsafe { decode_varint_unchecked(data, &mut pos) } as u32;
            if !f(cur) {
                return;
            }
        }
    }

    /// Heap bytes `(offsets, data)`.
    fn bytes(&self) -> (usize, usize) {
        (
            self.offsets.len() * std::mem::size_of::<u32>(),
            self.data.len(),
        )
    }

    /// Structural + decode validation of untrusted arrays (the io path).
    /// Checks offset-array shape, then fully decodes every list: exact
    /// byte consumption, ascending ids, all ids `< num_nodes`. Returns
    /// the total decoded edge count.
    fn validate(&self, direction: &'static str, num_nodes: usize) -> Result<usize, CsrError> {
        if self.offsets.len() != num_nodes + 1 {
            return Err(CsrError::OffsetLength {
                direction,
                got: self.offsets.len(),
                want: num_nodes + 1,
            });
        }
        if self.offsets[0] != 0 {
            return Err(CsrError::OffsetStart {
                direction,
                got: self.offsets[0] as usize,
            });
        }
        if let Some(i) = (1..self.offsets.len()).find(|&i| self.offsets[i] < self.offsets[i - 1]) {
            return Err(CsrError::NonMonotoneOffsets {
                direction,
                index: i,
            });
        }
        if self.offsets[num_nodes] as usize != self.data.len() {
            return Err(CsrError::OffsetTargetMismatch {
                direction,
                last: self.offsets[num_nodes] as usize,
                targets: self.data.len(),
            });
        }
        let mut edges = 0usize;
        let mut flat = 0usize;
        for v in 0..num_nodes as NodeId {
            let (start, end) = (
                self.offsets[v as usize] as usize,
                self.offsets[v as usize + 1] as usize,
            );
            let mut pos = start;
            let deg = checked_decode_varint(&self.data[..end], &mut pos)
                .ok_or(CsrError::DecodeCorrupt { direction, node: v })?;
            if deg > (end - pos) as u64 {
                // Exact sanity bound: every encoded edge costs at least
                // one byte, so a degree exceeding the list's remaining
                // bytes is forged and must not drive the loop below.
                return Err(CsrError::DecodeCorrupt { direction, node: v });
            }
            let mut prev: Option<i64> = None;
            for _ in 0..deg {
                let raw = checked_decode_varint(&self.data[..end], &mut pos)
                    .ok_or(CsrError::DecodeCorrupt { direction, node: v })?;
                let id = match prev {
                    None => v as i64 + zigzag_decode(raw),
                    Some(p) => p + raw as i64,
                };
                if id < 0 || id as usize >= num_nodes {
                    return Err(CsrError::TargetOutOfRange {
                        direction,
                        index: flat,
                        target: id.clamp(0, u32::MAX as i64) as NodeId,
                    });
                }
                prev = Some(id);
                flat += 1;
            }
            if pos != end {
                // trailing bytes a decoder would never read
                return Err(CsrError::DecodeCorrupt { direction, node: v });
            }
            edges += deg as usize;
        }
        Ok(edges)
    }
}

/// Bounds-checked VarInt decode for the validation pass (`None` on a
/// truncated or overlong — u64-overflowing — encoding).
fn checked_decode_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        if shift >= 63 && b > 1 {
            return None; // would overflow u64
        }
        x |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return Some(x);
        }
        shift += 7;
    }
}

/// A directed graph in byte-delta compressed CSR form, forward and
/// reverse adjacency both encoded. Drop-in [`GraphView`] backend: every
/// traversal kernel in the workspace runs on it unmodified.
///
/// # Examples
///
/// ```
/// use swscc_graph::{CompressedCsr, CsrGraph, GraphView};
/// use swscc_graph::bfs::Direction;
///
/// let raw = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// let z = CompressedCsr::from_csr(&raw);
/// assert_eq!(z.num_edges(), 4);
/// let mut nbrs = Vec::new();
/// z.for_each_neighbor(Direction::Forward, 2, |v| nbrs.push(v));
/// assert_eq!(nbrs, vec![0, 3]);
/// assert!(z.has_edge(1, 2));
/// ```
#[derive(Clone, Debug)]
pub struct CompressedCsr {
    num_nodes: usize,
    num_edges: usize,
    out: CompressedAdjacency,
    inc: CompressedAdjacency,
}

impl CompressedCsr {
    /// Exact re-encode of a raw CSR graph (duplicates and self-loops
    /// preserved), so `from_csr(g)` is neighbor-for-neighbor identical
    /// to `g`.
    pub fn from_csr(g: &CsrGraph) -> CompressedCsr {
        let n = g.num_nodes();
        // decode: construction cold path — one-time encode, not a
        // traversal decode loop.
        let mut out = CompressedAdjacency::with_nodes(n);
        let mut inc = CompressedAdjacency::with_nodes(n);
        for v in 0..n as NodeId {
            out.push_list(v, g.out_neighbors(v).iter().copied());
            inc.push_list(v, g.in_neighbors(v).iter().copied());
        }
        CompressedCsr {
            num_nodes: n,
            num_edges: g.num_edges(),
            out,
            inc,
        }
    }

    /// Streaming construction: builds the compressed graph without ever
    /// materializing the uncompressed CSR or the full edge list.
    ///
    /// `stream` must emit the same edge sequence every time it is called
    /// (deterministic replay); it is invoked once per shard. Each shard
    /// owns a contiguous node range and collects only the edges whose
    /// relevant endpoint falls in that range, so peak transient memory is
    /// `O(M / shards)` edge pairs instead of `O(M)`.
    ///
    /// Semantics match [`crate::builder::GraphBuilder`]'s defaults (the
    /// generators' construction path): duplicate edges are deduplicated
    /// and self-loops dropped. Per-shard sort+dedup is equivalent to a
    /// global dedup because an exact duplicate pair lands in the same
    /// shard as its twin.
    ///
    /// # Panics
    ///
    /// Panics if the stream emits an endpoint `>= num_nodes`.
    pub fn from_edge_stream(
        num_nodes: usize,
        shards: usize,
        stream: impl Fn(&mut dyn FnMut(NodeId, NodeId)),
    ) -> CompressedCsr {
        let shards = shards.clamp(1, num_nodes.max(1));
        // decode: construction cold path (shard-by-shard encode); the
        // transient vectors below are the O(M / shards) working set.
        let mut out = CompressedAdjacency::with_nodes(num_nodes);
        let mut inc = CompressedAdjacency::with_nodes(num_nodes);
        let mut num_edges = 0usize;
        for k in 0..shards {
            let lo = (num_nodes * k / shards) as NodeId;
            let hi = (num_nodes * (k + 1) / shards) as NodeId;
            let mut fwd: Vec<(NodeId, NodeId)> = Vec::new();
            let mut bwd: Vec<(NodeId, NodeId)> = Vec::new();
            stream(&mut |u, v| {
                assert!(
                    (u as usize) < num_nodes && (v as usize) < num_nodes,
                    "edge ({u}, {v}) out of range for {num_nodes} nodes"
                );
                if u == v {
                    return;
                }
                if (lo..hi).contains(&u) {
                    fwd.push((u, v));
                }
                if (lo..hi).contains(&v) {
                    bwd.push((v, u));
                }
            });
            fwd.sort_unstable();
            fwd.dedup();
            bwd.sort_unstable();
            bwd.dedup();
            num_edges += fwd.len();
            let (mut i, mut j) = (0usize, 0usize);
            for v in lo..hi {
                let fs = i;
                while i < fwd.len() && fwd[i].0 == v {
                    i += 1;
                }
                out.push_list(v, fwd[fs..i].iter().map(|&(_, t)| t));
                let bs = j;
                while j < bwd.len() && bwd[j].0 == v {
                    j += 1;
                }
                inc.push_list(v, bwd[bs..j].iter().map(|&(_, t)| t));
            }
        }
        CompressedCsr {
            num_nodes,
            num_edges,
            out,
            inc,
        }
    }

    /// Assembles a graph from raw encoded arrays, fully validating them
    /// first (decode every list: exact byte consumption, ascending ids,
    /// ids in range, per-node degree agreement between directions). The
    /// untrusted-input counterpart of [`CompressedCsr::from_csr`], used
    /// by the binary io path.
    pub fn from_raw_parts(
        num_nodes: usize,
        out_offsets: Vec<u32>,
        out_data: Vec<u8>,
        in_offsets: Vec<u32>,
        in_data: Vec<u8>,
    ) -> Result<CompressedCsr, CsrError> {
        let out = CompressedAdjacency {
            offsets: out_offsets,
            data: out_data,
        };
        let inc = CompressedAdjacency {
            offsets: in_offsets,
            data: in_data,
        };
        let forward = out.validate("out", num_nodes)?;
        let reverse = inc.validate("in", num_nodes)?;
        if forward != reverse {
            return Err(CsrError::EdgeCountMismatch { forward, reverse });
        }
        let g = CompressedCsr {
            num_nodes,
            num_edges: forward,
            out,
            inc,
        };
        // Per-node forward/reverse agreement, via the decode stream.
        // decode: validation cold path (runs once per load, not inside a
        // traversal).
        let mut indeg = vec![0usize; num_nodes];
        for v in 0..num_nodes as NodeId {
            g.out.for_each_while(v, |t| {
                indeg[t as usize] += 1;
                true
            });
        }
        for (n, &forward) in indeg.iter().enumerate() {
            let reverse = g.inc.degree(n as NodeId);
            if forward != reverse {
                return Err(CsrError::DegreeMismatch {
                    node: n as NodeId,
                    forward,
                    reverse,
                });
            }
        }
        Ok(g)
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Raw encoded arrays `(offsets, data)` for one direction — the io
    /// serialization surface.
    pub fn raw_parts(&self, dir: Direction) -> (&[u32], &[u8]) {
        let adj = match dir {
            Direction::Forward => &self.out,
            Direction::Backward => &self.inc,
        };
        (&adj.offsets, &adj.data)
    }

    /// Total encoded payload bytes (both directions' byte streams,
    /// excluding offsets) — the bytes/edge numerator quoted by the
    /// compression bench.
    pub fn encoded_bytes(&self) -> usize {
        self.out.data.len() + self.inc.data.len()
    }
}

impl GraphView for CompressedCsr {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn degree(&self, dir: Direction, n: NodeId) -> usize {
        match dir {
            Direction::Forward => self.out.degree(n),
            Direction::Backward => self.inc.degree(n),
        }
    }

    #[inline]
    fn for_each_neighbor_while(&self, dir: Direction, n: NodeId, f: impl FnMut(NodeId) -> bool) {
        match dir {
            Direction::Forward => self.out.for_each_while(n, f),
            Direction::Backward => self.inc.for_each_while(n, f),
        }
    }

    fn materialize_csr(&self) -> CsrGraph {
        // decode: cold path — full materialization for oracles/recovery,
        // not a kernel inner loop.
        let mut out_offsets = Vec::with_capacity(self.num_nodes + 1);
        let mut in_offsets = Vec::with_capacity(self.num_nodes + 1);
        let mut out_targets = Vec::with_capacity(self.num_edges);
        let mut in_targets = Vec::with_capacity(self.num_edges);
        out_offsets.push(0);
        in_offsets.push(0);
        for v in 0..self.num_nodes as NodeId {
            self.out.for_each_while(v, |t| {
                out_targets.push(t);
                true
            });
            out_offsets.push(out_targets.len());
            self.inc.for_each_while(v, |t| {
                in_targets.push(t);
                true
            });
            in_offsets.push(in_targets.len());
        }
        CsrGraph::from_raw_parts(
            self.num_nodes,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        )
        .expect("a valid CompressedCsr decodes to a valid CsrGraph")
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        let (o_off, o_data) = self.out.bytes();
        let (i_off, i_data) = self.inc.bytes();
        MemoryFootprint {
            backend: "compressed-csr",
            offsets_bytes: o_off + i_off,
            adjacency_bytes: o_data,
            transpose_bytes: i_data,
            side_bytes: 0,
            num_nodes: self.num_nodes,
            num_edges: self.num_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn assert_equivalent(raw: &CsrGraph, z: &CompressedCsr) {
        assert_eq!(GraphView::num_nodes(raw), z.num_nodes());
        assert_eq!(GraphView::num_edges(raw), z.num_edges());
        for n in 0..raw.num_nodes() as NodeId {
            for dir in [Direction::Forward, Direction::Backward] {
                let mut got = Vec::new();
                z.for_each_neighbor(dir, n, |v| got.push(v));
                assert_eq!(got.as_slice(), dir.neighbors(raw, n), "node {n} {dir:?}");
                assert_eq!(GraphView::degree(z, dir, n), got.len());
            }
        }
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            255,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            encode_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(decode_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
        ] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // small magnitudes stay one byte
        let mut buf = Vec::new();
        encode_varint(&mut buf, zigzag_encode(-3));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn from_csr_preserves_everything() {
        // duplicates, self-loops, empty lists, a hub
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (0, 1),
                (1, 1),
                (1, 2),
                (3, 0),
                (3, 2),
                (3, 4),
                (3, 5),
                (5, 0),
            ],
        );
        assert_equivalent(&g, &CompressedCsr::from_csr(&g));
    }

    #[test]
    fn empty_graph_and_isolated_nodes() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_equivalent(&g, &CompressedCsr::from_csr(&g));
        let g = CsrGraph::from_edges(4, &[]);
        let z = CompressedCsr::from_csr(&g);
        assert_equivalent(&g, &z);
        assert_eq!(z.encoded_bytes(), 8, "one zero-degree byte per list");
    }

    #[test]
    fn has_edge_probe_matches_raw() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 3), (2, 0), (2, 2), (4, 1)]);
        let z = CompressedCsr::from_csr(&g);
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(z.has_edge(u, v), g.has_edge(u, v), "{u}->{v}");
            }
        }
    }

    #[test]
    fn from_edge_stream_matches_builder() {
        // The stream path must agree with GraphBuilder's dedup +
        // self-loop-drop semantics, for every shard count.
        let edges = [
            (0u32, 1u32),
            (1, 2),
            (1, 2), // duplicate
            (2, 2), // self-loop
            (2, 0),
            (5, 3),
            (3, 5),
            (0, 1), // duplicate
            (4, 0),
        ];
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let raw = b.build();
        for shards in [1usize, 2, 3, 6, 100] {
            let z = CompressedCsr::from_edge_stream(6, shards, |emit| {
                for &(u, v) in &edges {
                    emit(u, v);
                }
            });
            assert_equivalent(&raw, &z);
        }
    }

    #[test]
    fn from_raw_parts_round_trips() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let z = CompressedCsr::from_csr(&g);
        let (oo, ob) = z.raw_parts(Direction::Forward);
        let (io_, ib) = z.raw_parts(Direction::Backward);
        let rebuilt =
            CompressedCsr::from_raw_parts(4, oo.to_vec(), ob.to_vec(), io_.to_vec(), ib.to_vec())
                .expect("encoded arrays validate");
        assert_equivalent(&g, &rebuilt);
    }

    #[test]
    fn from_raw_parts_rejects_truncated_stream() {
        let g = CsrGraph::from_edges(3, &[(0, 2), (2, 1)]);
        let z = CompressedCsr::from_csr(&g);
        let (oo, ob) = z.raw_parts(Direction::Forward);
        let (io_, ib) = z.raw_parts(Direction::Backward);
        let mut bad = ob.to_vec();
        bad.pop();
        let mut offsets = oo.to_vec();
        *offsets.last_mut().unwrap() = bad.len() as u32;
        let err =
            CompressedCsr::from_raw_parts(3, offsets, bad, io_.to_vec(), ib.to_vec()).unwrap_err();
        assert!(
            matches!(
                err,
                CsrError::DecodeCorrupt { .. }
                    | CsrError::OffsetTargetMismatch { .. }
                    | CsrError::NonMonotoneOffsets { .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn from_raw_parts_rejects_out_of_range_target() {
        // single list: degree 1, "neighbor" at id 5 in a 2-node graph
        let mut data = Vec::new();
        encode_varint(&mut data, 1);
        encode_varint(&mut data, zigzag_encode(5));
        let len = data.len() as u32;
        let err = CompressedCsr::from_raw_parts(
            2,
            vec![0, len, len + 1],
            {
                let mut d = data.clone();
                encode_varint(&mut d, 0);
                d
            },
            vec![0, 1, 2],
            vec![0, 0], // two empty lists
        )
        .unwrap_err();
        assert!(
            matches!(err, CsrError::TargetOutOfRange { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn from_raw_parts_rejects_degree_disagreement() {
        // out claims 0 -> 1, but the reverse side is empty
        let mut data = Vec::new();
        encode_varint(&mut data, 1);
        encode_varint(&mut data, zigzag_encode(1));
        let len = data.len() as u32;
        let err = CompressedCsr::from_raw_parts(
            2,
            vec![0, len, len + 1],
            {
                let mut d = data.clone();
                encode_varint(&mut d, 0);
                d
            },
            vec![0, 1, 2],
            vec![0, 0],
        )
        .unwrap_err();
        assert!(
            matches!(err, CsrError::EdgeCountMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn materialize_round_trips() {
        let g = CsrGraph::from_edges(5, &[(0, 4), (4, 0), (1, 3), (3, 1), (2, 2)]);
        let z = CompressedCsr::from_csr(&g);
        let m = z.materialize_csr();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = m.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn footprint_beats_raw_on_clustered_ids() {
        // ring lattice: neighbors adjacent to their vertex, the friendly
        // case — deltas are 1-2 bytes vs 4 raw.
        let n = 4096u32;
        let edges: Vec<_> = (0..n)
            .flat_map(|v| [(v, (v + 1) % n), (v, (v + 2) % n)])
            .collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let z = CompressedCsr::from_csr(&g);
        let fp = z.memory_footprint();
        assert!(
            fp.ratio_vs_raw() < 0.6,
            "ratio {:.3} should be well under raw",
            fp.ratio_vs_raw()
        );
        assert!(fp.to_string().contains("compressed-csr"));
    }

    #[test]
    fn max_delta_encodes() {
        // extreme spread: node 0 -> last node, exercising multi-byte
        // deltas both signed (first) and raw (rest).
        let n = (u16::MAX as usize) + 2;
        let last = (n - 1) as NodeId;
        let g = CsrGraph::from_edges(n, &[(0, last), (last, 0), (0, 1)]);
        assert_equivalent(&g, &CompressedCsr::from_csr(&g));
    }
}
