//! Finding reporters: human text for terminals/CI logs, JSON for the
//! uploaded CI artifact and tooling. Both are hand-rolled — the engine
//! is dependency-free by design.

use crate::engine::Report;
use std::fmt::Write as _;

/// `file:line: [rule] message` lines plus a one-line summary, matching
/// the old `xtask audit` output shape so log-scraping habits survive.
pub fn text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    if report.findings.is_empty() {
        let _ = writeln!(
            out,
            "lint: OK — {} files clean, {} finding(s) suppressed by baseline",
            report.files_scanned,
            report.suppressed.len()
        );
    } else {
        let _ = writeln!(
            out,
            "lint: FAILED — {} finding(s) across {} files ({} suppressed by baseline)",
            report.findings.len(),
            report.files_scanned,
            report.suppressed.len()
        );
    }
    out
}

/// Stable JSON: `{"files_scanned": N, "findings": […], "suppressed": […]}`.
pub fn json(report: &Report) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let render = |out: &mut String, key: &str, list: &[crate::engine::Finding], trailing| {
        let _ = write!(out, "  \"{key}\": [");
        for (i, f) in list.iter().enumerate() {
            let sep = if i + 1 == list.len() { "" } else { "," };
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{sep}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
        }
        let close = if list.is_empty() { "]" } else { "\n  ]" };
        let _ = writeln!(out, "{close}{trailing}");
    };
    render(&mut out, "findings", &report.findings, ",");
    render(&mut out, "suppressed", &report.suppressed, "");
    out.push_str("}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Finding, Report};

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                rule: "relaxed",
                file: "a.rs".to_string(),
                line: 3,
                message: "msg with \"quotes\" and\nnewline".to_string(),
                anchor: String::new(),
            }],
            suppressed: vec![],
            files_scanned: 5,
        }
    }

    #[test]
    fn text_shape() {
        let t = text(&sample());
        assert!(t.starts_with("a.rs:3: [relaxed] "));
        assert!(t.contains("lint: FAILED — 1 finding(s)"));
    }

    #[test]
    fn json_escapes() {
        let j = json(&sample());
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"files_scanned\": 5"));
        assert!(j.contains("\"suppressed\": []"));
    }
}
