//! §4.2 ablation: direction-optimizing BFS in the phase-1 peel.
//!
//! The paper uses level-synchronous parallel BFS and remarks that "many
//! efficient implementations of the BFS traversal have been proposed
//! [23, 27], which may improve our performance results even further" —
//! citing Beamer's direction-optimizing BFS \[10\] as its reachable-set
//! implementation reference. This harness measures the peel with the
//! bottom-up switch on and off.

use std::time::Instant;
use swscc_bench::{print_header, reps, scale};
use swscc_core::fwbw::parallel::par_fwbw;
use swscc_core::state::{AlgoState, INITIAL_COLOR};
use swscc_core::trim::par_trim;
use swscc_core::SccConfig;
use swscc_graph::bfs::{self, Direction, UNREACHED};
use swscc_graph::datasets::Dataset;
use swscc_graph::NodeId;
use swscc_parallel::pool::with_pool;

fn peel_ms(d: Dataset, cfg: &SccConfig) -> (f64, usize) {
    let g = d.load(scale(), 42);
    let mut best = f64::INFINITY;
    let mut resolved = 0;
    for _ in 0..reps() {
        let (ms, r) = with_pool(cfg.threads, || {
            let state = AlgoState::new(&g);
            par_trim(&state);
            let t0 = Instant::now();
            let o = par_fwbw(&state, cfg, INITIAL_COLOR);
            (t0.elapsed().as_secs_f64() * 1e3, o.resolved)
        });
        best = best.min(ms);
        resolved = r;
    }
    (best, resolved)
}

/// Times one full BFS of the raw `EdgeMap` kernel (no SCC machinery) from
/// the highest-out-degree node, with and without the bottom-up switch.
/// Returns `(top_down_ms, dir_opt_ms, reached)`.
fn kernel_ms(d: Dataset, threads: usize) -> (f64, f64, usize) {
    let g = d.load(scale(), 42);
    let src: NodeId = (0..g.num_nodes() as NodeId)
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(0);
    let mut best_td = f64::INFINITY;
    let mut best_do = f64::INFINITY;
    let mut reached = 0usize;
    for _ in 0..reps() {
        let (ms_td, r_td, ms_do, r_do) = with_pool(threads, || {
            let t0 = Instant::now();
            let lv = bfs::par_bfs_levels(&g, src, Direction::Forward);
            let ms_td = t0.elapsed().as_secs_f64() * 1e3;
            let r_td = lv.iter().filter(|&&l| l != UNREACHED).count();
            let t0 = Instant::now();
            let lv = bfs::par_bfs_levels_dobfs(&g, src, Direction::Forward);
            let ms_do = t0.elapsed().as_secs_f64() * 1e3;
            let r_do = lv.iter().filter(|&&l| l != UNREACHED).count();
            (ms_td, r_td, ms_do, r_do)
        });
        assert_eq!(r_td, r_do, "both kernel modes must reach the same set");
        best_td = best_td.min(ms_td);
        best_do = best_do.min(ms_do);
        reached = r_td;
    }
    (best_td, best_do, reached)
}

fn main() {
    print_header("§4.2 ablation: direction-optimizing BFS in Par-FWBW");
    println!(
        "{:<9} {:>14} {:>14} {:>8} {:>10}",
        "name", "top-down (ms)", "dir-opt (ms)", "ratio", "resolved"
    );
    for d in Dataset::small_world() {
        let base = SccConfig::default();
        let dobfs = SccConfig {
            direction_optimizing: true,
            ..SccConfig::default()
        };
        let (t_td, r1) = peel_ms(d, &base);
        let (t_do, r2) = peel_ms(d, &dobfs);
        assert_eq!(r1, r2, "both traversals must peel the same SCC");
        println!(
            "{:<9} {:>14.2} {:>14.2} {:>7.2}x {:>10}",
            d.name(),
            t_td,
            t_do,
            t_td / t_do,
            r1
        );
    }

    // The same switch measured on the raw EdgeMap kernel — one forward
    // BFS from the top-degree hub, no trim/pivot/color machinery — to
    // separate the traversal effect from the peel around it.
    println!();
    print_header("raw EdgeMap kernel: one forward BFS from the top hub");
    println!(
        "{:<9} {:>14} {:>14} {:>8} {:>10}",
        "name", "top-down (ms)", "dir-opt (ms)", "ratio", "reached"
    );
    let threads = SccConfig::default().threads;
    for d in Dataset::small_world() {
        let (t_td, t_do, reached) = kernel_ms(d, threads);
        println!(
            "{:<9} {:>14.2} {:>14.2} {:>7.2}x {:>10}",
            d.name(),
            t_td,
            t_do,
            t_td / t_do,
            reached
        );
    }
}
