//! Rule 1 — facade discipline: no direct `std::sync::atomic`,
//! `std::thread` thread-control, or `parking_lot` use outside the
//! `swscc-sync` facade and the allowlisted infrastructure crates. All
//! concurrency primitives must flow through the facade so the
//! `--cfg model` checker sees them.
//!
//! Token-aware: matches real code paths only, so doc prose, strings, and
//! this rule's own pattern table can mention the banned paths freely —
//! and a path split across lines (`std::\n    sync::atomic`) no longer
//! evades it.

use crate::engine::{Finding, Rule, Workspace};
use crate::rules::{finding_at, Code};
use crate::source::SourceFile;

/// Banned path → what to use instead.
const BANNED: &[(&[&str], &str)] = &[
    (&["std", "sync", "atomic"], "swscc_sync::atomic"),
    (&["std", "thread", "scope"], "swscc_sync::thread::scope"),
    (&["std", "thread", "spawn"], "swscc_sync::thread::scope"),
    (
        &["std", "thread", "yield_now"],
        "swscc_sync::thread::yield_now",
    ),
    (&["std", "thread", "sleep"], "swscc_sync::thread::sleep"),
    (&["std", "hint", "spin_loop"], "swscc_sync::hint::spin_loop"),
];

pub struct Facade;

impl Rule for Facade {
    fn name(&self) -> &'static str {
        "facade"
    }

    fn description(&self) -> &'static str {
        "no raw std::sync::atomic / std::thread control / parking_lot outside the swscc-sync facade"
    }

    fn check_file(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Finding>) {
        if ws.config.is_facade_exempt(&file.rel_path) {
            return;
        }
        let code = Code::new(file);
        for i in 0..code.len() {
            for (path, instead) in BANNED {
                if code.path_at(i, path) {
                    out.push(finding_at(
                        &code,
                        i,
                        self.name(),
                        format!(
                            "direct `{}` — use `{instead}` so the model checker can instrument it",
                            path.join("::")
                        ),
                    ));
                }
            }
            // Any path through the parking_lot crate (`parking_lot::…`).
            if code.path_at(i, &["parking_lot"]) && code.followed_by_path_sep(i) {
                out.push(finding_at(
                    &code,
                    i,
                    self.name(),
                    "direct `parking_lot::` — use `swscc_sync::{Mutex, RwLock}` so the model \
                     checker can instrument it"
                        .to_string(),
                ));
            }
        }
    }
}

impl Code<'_> {
    /// Token `i` is followed by `::` — it heads a longer path.
    pub(crate) fn followed_by_path_sep(&self, i: usize) -> bool {
        i + 2 < self.len() && self.text(i + 1) == ":" && self.text(i + 2) == ":"
    }
}
