//! Rule — socket write timeouts in the serve layer: a raw method-form
//! socket write (`.write_all(…)` / `.write(…)`) in non-test serve code
//! is only legal when the file also arms a write timeout
//! (`set_write_timeout`) or the site carries a `// serve:` comment
//! naming who armed one.
//!
//! Why a lint and not a code-review note: the serve daemon's
//! availability contract says a slow-reading client may stall only its
//! own connection thread. A socket write without a write timeout
//! anywhere on the path is an unbounded park — one dead peer pins a
//! handler forever, and under enough dead peers the process runs out of
//! threads while the accept loop keeps promising service. The rule
//! scopes to the serve paths (`crates/serve/`, `src/bin/`) because
//! that is where sockets live; path-form calls like `std::fs::write(…)`
//! are not socket writes and are ignored.

use crate::engine::{Finding, Rule, Workspace};
use crate::rules::{finding_at, Code};
use crate::source::SourceFile;

const WRITE_METHODS: &[&str] = &["write_all", "write"];

pub struct SocketTimeout;

impl Rule for SocketTimeout {
    fn name(&self) -> &'static str {
        "socket-timeout"
    }

    fn description(&self) -> &'static str {
        "serve-layer socket writes need a write timeout in scope (or a `// serve:` justification)"
    }

    fn check_file(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Finding>) {
        if !ws.config.is_serve_path(&file.rel_path) {
            return;
        }
        let code = Code::new(file);
        // A file that arms write timeouts itself (the transport layer)
        // is the thing every other write relies on — exempt wholesale.
        for i in 0..code.len() {
            if code.text(i) == "set_write_timeout" {
                return;
            }
        }
        for i in 0..code.len() {
            if !WRITE_METHODS.iter().any(|m| code.is_call(i, m)) {
                continue;
            }
            // Method-call form only: `stream.write_all(…)`. Free and
            // path-qualified calls (`write!`, `std::fs::write`) are not
            // socket writes.
            if i == 0 || code.text(i - 1) != "." {
                continue;
            }
            if file.in_test_code(code.offset(i)) {
                continue;
            }
            if file.has_justification(code.line(i), "// serve:") {
                continue;
            }
            out.push(finding_at(
                &code,
                i,
                self.name(),
                format!(
                    "`.{}(…)` on a stream with no `set_write_timeout` in this file — a \
                     slow-reading peer parks this thread forever; arm a write timeout on \
                     the socket, or add a `// serve:` comment naming who armed one",
                    code.text(i)
                ),
            ));
        }
    }
}
