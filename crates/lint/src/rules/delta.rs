//! Rule — delta-overlay discipline: the incremental engine and the
//! serve layer must read adjacency through the `DeltaGraph` overlay,
//! never beneath it. Calling `base()` (or the raw-CSR accessors
//! `out_neighbors`/`in_neighbors`/`as_csr`) from those files answers
//! queries from the *compacted* base, silently dropping every pending
//! insert and tombstone — a stale read that no test of the overlay
//! itself can catch. Escape hatch: a `// delta:` comment in the same
//! paragraph naming why the site is delta-safe (e.g. it runs only when
//! `pending() == 0`, or it deliberately measures base-vs-overlay
//! drift).
//!
//! The rule scopes to the delta-consuming paths
//! (`crates/core/src/incremental`, `crates/serve/src/`) — inside
//! `swscc-graph` the overlay's own implementation reads its base by
//! definition, and everywhere else the `graphview` rule already owns
//! raw-access policy.

use crate::engine::{Finding, Rule, Workspace};
use crate::rules::{finding_at, Code};
use crate::source::SourceFile;

const UNDERLAY_ACCESS: &[&str] = &["base", "out_neighbors", "in_neighbors", "as_csr"];

pub struct DeltaOverlay;

impl Rule for DeltaOverlay {
    fn name(&self) -> &'static str {
        "delta-overlay"
    }

    fn description(&self) -> &'static str {
        "incremental/serve code must not read beneath the DeltaGraph overlay \
         (base/out_neighbors/in_neighbors/as_csr) without a `// delta:` justification"
    }

    fn check_file(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Finding>) {
        if !ws.config.is_delta_path(&file.rel_path) {
            return;
        }
        let code = Code::new(file);
        for i in 0..code.len() {
            if !UNDERLAY_ACCESS.iter().any(|m| code.is_call(i, m)) {
                continue;
            }
            // Method-call form only: `graph.base()`. A free function or
            // local named `base` is not an overlay escape.
            if i == 0 || code.text(i - 1) != "." {
                continue;
            }
            if file.in_test_code(code.offset(i)) {
                continue; // tests diff overlay vs base on purpose
            }
            if !file.has_justification(code.line(i), "// delta:") {
                out.push(finding_at(
                    &code,
                    i,
                    self.name(),
                    format!(
                        "`{}` reads beneath the DeltaGraph overlay — pending inserts \
                         and tombstones are invisible down there; route through the \
                         GraphView surface of the overlay, or add a `// delta:` \
                         justification saying why this site is delta-safe",
                        code.text(i)
                    ),
                ));
            }
        }
    }
}
