//! End-to-end pipeline tests: condensation, membership queries, reports,
//! and the engine composition battery (`composition_*`) — every stock
//! stage list plus a set of legal custom compositions must produce the
//! Tarjan partition on every corpus graph at 1/2/4 threads, and illegal
//! compositions must be rejected up front.

use swscc::core::instrument::Phase;
use swscc::graph::datasets::Dataset;
use swscc::graph::gen::{bowtie, erdos_renyi, watts_strogatz, BowtieConfig};
use swscc::{
    detect_scc, run_pipeline, Algorithm, CsrGraph, Pipeline, PipelineError, RunGuard, SccConfig,
};

fn kahn_is_acyclic(dag: &CsrGraph) -> bool {
    let mut indeg: Vec<usize> = dag.nodes().map(|v| dag.in_degree(v)).collect();
    let mut queue: Vec<u32> = dag.nodes().filter(|&v| indeg[v as usize] == 0).collect();
    let mut seen = 0usize;
    while let Some(u) = queue.pop() {
        seen += 1;
        for &v in dag.out_neighbors(u) {
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                queue.push(v);
            }
        }
    }
    seen == dag.num_nodes()
}

#[test]
fn condensation_is_always_a_dag() {
    for d in [Dataset::Livej, Dataset::Baidu, Dataset::CaRoad] {
        let g = d.generate(0.05, 42);
        let (r, _) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
        let dag = r.condensation(&g);
        assert_eq!(dag.num_nodes(), r.num_components());
        assert!(
            kahn_is_acyclic(&dag),
            "{} condensation has a cycle",
            d.name()
        );
    }
}

#[test]
fn condensation_preserves_cross_edges() {
    let g = Dataset::Flickr.generate(0.03, 11);
    let (r, _) = detect_scc(&g, Algorithm::Method1, &SccConfig::default());
    let dag = r.condensation(&g);
    // every original cross-component edge appears in the condensation
    for (u, v) in g.edges() {
        if !r.same_component(u, v) {
            assert!(
                dag.has_edge(r.component(u), r.component(v)),
                "cross edge {u}->{v} missing from condensation"
            );
        }
    }
}

#[test]
fn membership_queries_consistent() {
    let g = Dataset::Baidu.generate(0.05, 3);
    let (r, _) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
    assert!(r.check_dense());
    let sizes = r.component_sizes();
    assert_eq!(sizes.iter().sum::<usize>(), g.num_nodes());
    // members() round-trips with component()
    let c = r.component(0);
    let members = r.members(c);
    assert!(members.contains(&0));
    assert!(members.iter().all(|&m| r.component(m) == c));
    assert_eq!(members.len(), sizes[c as usize]);
}

#[test]
fn report_phase_accounting_covers_all_nodes() {
    for algo in Algorithm::parallel() {
        let g = Dataset::Livej.generate(0.05, 42);
        let (_, report) = detect_scc(&g, algo, &SccConfig::with_threads(2));
        let resolved: usize = report.phase_resolved.iter().map(|(_, n)| n).sum();
        assert_eq!(resolved, g.num_nodes(), "{} loses nodes", algo.name());
        assert!(report.total_time.as_nanos() > 0);
    }
}

#[test]
fn method2_wcc_increases_initial_tasks() {
    // The §3.3 effect: Method 2's WCC phase seeds far more work items than
    // Method 1's color scan.
    let g = Dataset::Flickr.generate(0.1, 42);
    let cfg = SccConfig::with_threads(1);
    let (_, rep1) = detect_scc(&g, Algorithm::Method1, &cfg);
    let (_, rep2) = detect_scc(&g, Algorithm::Method2, &cfg);
    assert!(
        rep2.initial_tasks >= 10 * rep1.initial_tasks.max(1),
        "WCC did not multiply task parallelism: method1={} method2={}",
        rep1.initial_tasks,
        rep2.initial_tasks
    );
}

#[test]
fn method2_trim_resolves_majority_on_small_world() {
    // Fig. 8 shape: data-parallel phases (trim + peel + trim') account for
    // the overwhelming majority of nodes on small-world graphs.
    let g = Dataset::Livej.generate(0.1, 42);
    let (_, report) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
    let data_parallel = report.resolved_in(Phase::ParTrim)
        + report.resolved_in(Phase::ParFwbw)
        + report.resolved_in(Phase::ParTrim2);
    assert!(
        data_parallel as f64 >= 0.9 * g.num_nodes() as f64,
        "only {data_parallel}/{} resolved in phase 1",
        g.num_nodes()
    );
}

#[test]
fn patents_resolved_entirely_by_trim() {
    // §5: "the SCC structure of this graph was identified by the Trim
    // operation".
    let g = Dataset::Patents.generate(0.1, 42);
    let (_, report) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
    assert_eq!(report.resolved_in(Phase::ParTrim), g.num_nodes());
    assert_eq!(report.resolved_in(Phase::RecurFwbw), 0);
}

#[test]
fn task_log_limit_respected_end_to_end() {
    let g = Dataset::Baidu.generate(0.05, 42);
    let cfg = SccConfig {
        task_log_limit: 7,
        ..SccConfig::with_threads(1)
    };
    let (_, report) = detect_scc(&g, Algorithm::Method2, &cfg);
    assert!(report.task_log.len() <= 7);
    assert!(!report.task_log.is_empty());
}

#[test]
fn sequential_oracles_report_shape() {
    let g = Dataset::Orkut.generate(0.03, 42);
    for algo in [Algorithm::Tarjan, Algorithm::Kosaraju, Algorithm::Pearce] {
        let (r, report) = detect_scc(&g, algo, &SccConfig::default());
        assert!(r.num_components() > 0);
        assert!(report.phase_times.is_empty());
        assert_eq!(report.initial_tasks, 0);
    }
}

#[test]
fn algorithm_names_round_trip() {
    for a in Algorithm::all() {
        assert_eq!(Algorithm::from_name(a.name()), Some(a));
    }
    assert_eq!(Algorithm::from_name("bogus"), None);
}

// ---------------------------------------------------------------------------
// Engine composition battery (`composition_*`, the CI pipeline-matrix step)
// ---------------------------------------------------------------------------

/// Small but structurally diverse corpus: planted bowtie (giant SCC +
/// in/out/tendrils), both Erdős–Rényi regimes, a small-world ring, and
/// two dataset analogs (power-law and pure-DAG extremes).
fn corpus() -> Vec<(&'static str, CsrGraph)> {
    let bt = bowtie(&BowtieConfig {
        num_nodes: 1500,
        ..Default::default()
    });
    vec![
        ("bowtie", bt.graph),
        ("sparse-er", erdos_renyi(1200, 600, 7)),
        ("dense-er", erdos_renyi(1200, 5000, 7)),
        ("watts-strogatz", watts_strogatz(1000, 6, 0.1, 9)),
        ("baidu", Dataset::Baidu.generate(0.03, 42)),
        ("patents", Dataset::Patents.generate(0.03, 42)),
    ]
}

fn assert_composition_matches_tarjan(spec: &str) {
    let pipeline = Pipeline::parse(spec).unwrap_or_else(|e| panic!("{spec:?} rejected: {e}"));
    for (label, g) in corpus() {
        let want = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default())
            .0
            .canonical_labels();
        for threads in [1usize, 2, 4] {
            let cfg = SccConfig::with_threads(threads);
            let (r, report) = run_pipeline(&g, &pipeline, &cfg, &RunGuard::new())
                .unwrap_or_else(|e| panic!("{spec:?} on {label}: {e}"));
            assert_eq!(
                r.canonical_labels(),
                want,
                "pipeline {spec:?} with {threads} threads disagrees with tarjan on {label}"
            );
            let resolved: usize = report.phase_resolved.iter().map(|(_, n)| n).sum();
            assert_eq!(
                resolved,
                g.num_nodes(),
                "pipeline {spec:?} loses nodes in the report on {label}"
            );
        }
    }
}

#[test]
fn composition_stock_pipelines_match_tarjan() {
    for algo in [
        Algorithm::Baseline,
        Algorithm::Method1,
        Algorithm::Method2,
        Algorithm::Coloring,
        Algorithm::Multistep,
    ] {
        let pipeline = Pipeline::stock(algo).expect("parallel algorithms have stock pipelines");
        assert_composition_matches_tarjan(&pipeline.to_string());
    }
}

#[test]
fn composition_queue_only() {
    assert_composition_matches_tarjan("tasks");
}

#[test]
fn composition_serial_only() {
    assert_composition_matches_tarjan("serial");
}

#[test]
fn composition_peel_without_trim() {
    assert_composition_matches_tarjan("fwbw,tasks");
}

#[test]
fn composition_trim2_first() {
    assert_composition_matches_tarjan("trim2,tasks");
}

#[test]
fn composition_wcc_partition_only() {
    assert_composition_matches_tarjan("wcc,tasks");
}

#[test]
fn composition_trim_trim2_wcc() {
    assert_composition_matches_tarjan("trim,trim2,wcc,tasks");
}

#[test]
fn composition_single_peel_serial_finish() {
    assert_composition_matches_tarjan("peel,serial");
}

#[test]
fn composition_method2_without_trim2_ablation() {
    assert_composition_matches_tarjan("trim,fwbw,wcc,tasks");
}

#[test]
fn composition_bare_coloring() {
    assert_composition_matches_tarjan("coloring");
}

#[test]
fn composition_color_tail_without_peel() {
    assert_composition_matches_tarjan("trim,colortail,serial");
}

#[test]
fn composition_everything_but_the_kitchen_sink() {
    assert_composition_matches_tarjan("trim,fwbw,trim2,trim,peel,trim,wcc,tasks");
}

#[test]
fn composition_multisearch_only() {
    assert_composition_matches_tarjan("multisearch");
}

#[test]
fn composition_peel_then_multisearch() {
    // The headline MultiReach composition: peel the giant SCC, then
    // resolve the residue with multi-pivot reachability rounds.
    assert_composition_matches_tarjan("trim,fwbw,peel,multisearch");
}

#[test]
fn composition_wcc_then_multisearch() {
    // multisearch is legal anywhere tasks is, including after a
    // re-partitioning stage (it searches within color partitions).
    assert_composition_matches_tarjan("trim,fwbw,trim2,trim,wcc,multisearch");
}

type RejectionPredicate = fn(&PipelineError) -> bool;

#[test]
fn composition_illegal_pipelines_rejected() {
    use PipelineError as E;
    let cases: &[(&str, RejectionPredicate)] = &[
        ("", |e| matches!(e, E::Empty)),
        (" , ,", |e| matches!(e, E::Empty)),
        ("trim", |e| matches!(e, E::NotTerminal(_))),
        ("trim,fwbw,wcc", |e| matches!(e, E::NotTerminal(_))),
        // final-stage check fires first: the trailing `trim` is the error
        ("tasks,trim", |e| matches!(e, E::NotTerminal(_))),
        ("coloring,tasks", |e| matches!(e, E::TerminalNotLast(_))),
        ("serial,serial", |e| matches!(e, E::TerminalNotLast(_))),
        ("multisearch,tasks", |e| matches!(e, E::TerminalNotLast(_))),
        ("trim,bogus,tasks", |e| matches!(e, E::UnknownStage(_))),
        ("wcc,fwbw,tasks", |e| {
            matches!(e, E::PeelAfterRepartition { .. })
        }),
        ("trim,colortail,peel,serial", |e| {
            matches!(e, E::PeelAfterRepartition { .. })
        }),
    ];
    for (spec, matches_expected) in cases {
        match Pipeline::parse(spec) {
            Ok(p) => panic!("{spec:?} should be rejected, parsed as {p}"),
            Err(e) => assert!(
                matches_expected(&e),
                "{spec:?} rejected with unexpected error: {e}"
            ),
        }
    }
}

#[test]
fn composition_wcc_dispatcher_agrees_across_impls() {
    // Satellite knob: the Wcc kernel consumes `cfg.wcc_impl`; label
    // propagation and union-find must induce identical partitions.
    use swscc::WccImpl;
    let pipeline = Pipeline::parse("trim,fwbw,trim2,wcc,tasks").unwrap();
    for (label, g) in corpus() {
        let want = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default())
            .0
            .canonical_labels();
        for impl_ in [WccImpl::LabelPropagation, WccImpl::UnionFind] {
            let cfg = SccConfig {
                wcc_impl: impl_,
                ..SccConfig::with_threads(2)
            };
            let (r, _) = run_pipeline(&g, &pipeline, &cfg, &RunGuard::new()).unwrap();
            assert_eq!(
                r.canonical_labels(),
                want,
                "wcc impl {impl_:?} breaks the pipeline on {label}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Compressed-backend battery (`compressed_*`, the CI compressed lane)
// ---------------------------------------------------------------------------

/// Runs `spec` on the byte-delta compressed backend over the whole corpus
/// at 1/2/4 threads under every live-set compaction policy, asserting the
/// Tarjan partition each time. The GraphView seam must be behaviorally
/// invisible: same SCCs, same full phase accounting.
fn assert_compressed_composition_matches_tarjan(spec: &str) {
    use swscc::graph::CompressedCsr;
    use swscc::CompactionPolicy;
    let pipeline = Pipeline::parse(spec).unwrap_or_else(|e| panic!("{spec:?} rejected: {e}"));
    for (label, g) in corpus() {
        let want = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default())
            .0
            .canonical_labels();
        let z = CompressedCsr::from_csr(&g);
        for threads in [1usize, 2, 4] {
            for policy in [
                CompactionPolicy::Auto,
                CompactionPolicy::Always,
                CompactionPolicy::Never,
            ] {
                let cfg = SccConfig {
                    live_set_compaction: policy,
                    ..SccConfig::with_threads(threads)
                };
                let (r, report) = run_pipeline(&z, &pipeline, &cfg, &RunGuard::new())
                    .unwrap_or_else(|e| panic!("{spec:?} on compressed {label}: {e}"));
                assert_eq!(
                    r.canonical_labels(),
                    want,
                    "pipeline {spec:?} ({threads} threads, {policy:?}) disagrees \
                     with tarjan on compressed {label}"
                );
                let resolved: usize = report.phase_resolved.iter().map(|(_, n)| n).sum();
                assert_eq!(
                    resolved,
                    g.num_nodes(),
                    "pipeline {spec:?} loses nodes on compressed {label}"
                );
            }
        }
    }
}

#[test]
fn compressed_stock_baseline_matches_tarjan() {
    let p = Pipeline::stock(Algorithm::Baseline).unwrap();
    assert_compressed_composition_matches_tarjan(&p.to_string());
}

#[test]
fn compressed_stock_method1_matches_tarjan() {
    let p = Pipeline::stock(Algorithm::Method1).unwrap();
    assert_compressed_composition_matches_tarjan(&p.to_string());
}

#[test]
fn compressed_stock_method2_matches_tarjan() {
    let p = Pipeline::stock(Algorithm::Method2).unwrap();
    assert_compressed_composition_matches_tarjan(&p.to_string());
}

#[test]
fn compressed_stock_coloring_matches_tarjan() {
    let p = Pipeline::stock(Algorithm::Coloring).unwrap();
    assert_compressed_composition_matches_tarjan(&p.to_string());
}

#[test]
fn compressed_stock_multistep_matches_tarjan() {
    let p = Pipeline::stock(Algorithm::Multistep).unwrap();
    assert_compressed_composition_matches_tarjan(&p.to_string());
}

#[test]
fn compressed_multisearch_matches_tarjan() {
    assert_compressed_composition_matches_tarjan("trim,fwbw,peel,multisearch");
}

#[test]
fn compressed_and_raw_backends_identical_partitions() {
    // Beyond ≡ Tarjan: both backends, same pipeline, same config — the
    // canonical labelings must agree exactly on every corpus graph.
    use swscc::graph::CompressedCsr;
    let pipeline = Pipeline::parse("trim,fwbw,trim,trim2,trim,wcc,tasks").unwrap();
    for (label, g) in corpus() {
        let z = CompressedCsr::from_csr(&g);
        let cfg = SccConfig::with_threads(2);
        let (raw, _) = run_pipeline(&g, &pipeline, &cfg, &RunGuard::new()).unwrap();
        let (zip, _) = run_pipeline(&z, &pipeline, &cfg, &RunGuard::new()).unwrap();
        assert_eq!(
            raw.canonical_labels(),
            zip.canonical_labels(),
            "backends disagree on {label}"
        );
    }
}
