//! §3.4 ablation: Trim2's effect on the Par-WCC step.
//!
//! "the Trim2 step provides only a marginal speedup by itself; however it
//! reduces the execution time of the following WCC step by up to 50%
//! because it cuts out a chain of weakly connected size-2 SCCs."
//!
//! This harness drives the Method 2 pipeline manually twice — with the
//! full Par-Trim′ (Trim, Trim2, Trim) and with plain Trim — and times the
//! Par-WCC step that follows, plus its input size and iteration count.

use std::time::Instant;
use swscc_bench::{print_header, scale};
use swscc_core::fwbw::parallel::par_fwbw;
use swscc_core::state::{AlgoState, INITIAL_COLOR};
use swscc_core::trim::par_trim;
use swscc_core::trim2::par_trim2;
use swscc_core::wcc::par_wcc;
use swscc_core::SccConfig;
use swscc_graph::datasets::Dataset;
use swscc_parallel::pool::with_pool;

struct Cell {
    wcc_ms: f64,
    wcc_input: usize,
    iterations: usize,
    groups: usize,
    trim2_resolved: usize,
}

fn run(d: Dataset, with_trim2: bool, cfg: &SccConfig) -> Cell {
    let g = d.load(scale(), 42);
    with_pool(cfg.threads, || {
        let state = AlgoState::new(&g);
        par_trim(&state);
        par_fwbw(&state, cfg, INITIAL_COLOR);
        par_trim(&state);
        let trim2_resolved = if with_trim2 {
            let r = par_trim2(&state);
            par_trim(&state);
            r
        } else {
            0
        };
        let wcc_input = state.count_alive();
        let t0 = Instant::now();
        let out = par_wcc(&state);
        let wcc_ms = t0.elapsed().as_secs_f64() * 1e3;
        Cell {
            wcc_ms,
            wcc_input,
            iterations: out.iterations,
            groups: out.groups.len(),
            trim2_resolved,
        }
    })
}

fn main() {
    print_header("§3.4 ablation: Trim2 before Par-WCC");
    println!(
        "{:<9} {:>7} {:>13} {:>11} {:>9} {:>8} {:>13}",
        "name", "trim2?", "trim2-resolved", "wcc-input", "wcc-ms", "groups", "wcc-iterations"
    );
    let cfg = SccConfig::default();
    for d in Dataset::small_world() {
        for with_trim2 in [false, true] {
            let c = run(d, with_trim2, &cfg);
            println!(
                "{:<9} {:>7} {:>13} {:>11} {:>9.2} {:>8} {:>13}",
                d.name(),
                if with_trim2 { "yes" } else { "no" },
                c.trim2_resolved,
                c.wcc_input,
                c.wcc_ms,
                c.groups,
                c.iterations
            );
        }
    }
    println!("\npaper: Trim2 reduces WCC execution time by up to 50%");
}
