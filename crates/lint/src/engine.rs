//! The rule engine: workspace loading, rule dispatch, baseline
//! application, and the finding model.

use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::rules;
use crate::source::SourceFile;

/// One diagnostic: a rule firing at a file:line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (stable identifier; `xtask lint --rule <name>`).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
    /// Trimmed text of the flagged line — the baseline fingerprints this
    /// instead of the line number so entries survive unrelated edits.
    pub anchor: String,
}

/// Engine configuration: the path policy knobs every rule consults.
/// Defaults encode the real workspace; the fixture self-tests override
/// them to point at fixture files.
#[derive(Clone, Debug)]
pub struct Config {
    /// Path prefixes exempt from the facade rule (the facade itself and
    /// the compat shims that *implement* std-level plumbing).
    pub facade_exempt: Vec<String>,
    /// Files allowed to call the driver's interrupt/recovery machinery.
    pub engine_exempt: Vec<String>,
    /// Files whose non-test code is the neighbor-decode hot path.
    pub decode_hot_files: Vec<String>,
    /// Path prefix under which raw adjacency access is the backend's own
    /// business (rule `graphview` fires outside it).
    pub graph_crate: String,
    /// The file holding the `STOCK` pipeline table (rule `pipeline`).
    pub pipeline_file: String,
    /// Path prefixes outside the atomic-inventory scope (infrastructure
    /// that implements or tests the primitives rather than using them in
    /// algorithm protocols).
    pub inventory_exempt: Vec<String>,
    /// Path prefixes exempt from the safety-tag obligation (compat shims
    /// and this linter; test code is exempt by classification).
    pub safety_tag_exempt: Vec<String>,
    /// Path prefixes holding the serve layer (rule `socket-timeout`:
    /// raw socket writes there need a write timeout in scope).
    pub serve_paths: Vec<String>,
    /// Path prefixes that consume the `DeltaGraph` overlay (rule
    /// `delta-overlay`: reading beneath the overlay there needs a
    /// `// delta:` justification).
    pub delta_paths: Vec<String>,
    /// The DESIGN.md §8 generated-inventory text, if DESIGN.md exists.
    pub design_inventory: Option<String>,
}

impl Default for Config {
    fn default() -> Config {
        let compat_infra = |v: &mut Vec<String>| {
            for p in [
                "crates/compat/parking_lot/",
                "crates/compat/proptest/",
                "crates/compat/criterion/",
                "crates/compat/rand/",
            ] {
                v.push(p.to_string());
            }
        };
        let mut facade_exempt = vec!["crates/sync/".to_string(), "crates/lint/".to_string()];
        compat_infra(&mut facade_exempt);
        let inventory_exempt = vec![
            "crates/sync/".to_string(),
            "crates/lint/".to_string(),
            "crates/xtask/".to_string(),
            "crates/compat/".to_string(),
        ];
        let safety_tag_exempt = vec!["crates/lint/".to_string(), "crates/compat/".to_string()];
        Config {
            facade_exempt,
            engine_exempt: vec![
                "crates/core/src/pipeline.rs".to_string(),
                "crates/core/src/driver.rs".to_string(),
            ],
            decode_hot_files: vec!["crates/graph/src/compressed.rs".to_string()],
            graph_crate: "crates/graph/".to_string(),
            pipeline_file: "crates/core/src/pipeline.rs".to_string(),
            inventory_exempt,
            safety_tag_exempt,
            serve_paths: vec!["crates/serve/".to_string(), "src/bin/".to_string()],
            delta_paths: vec![
                "crates/core/src/incremental".to_string(),
                "crates/serve/src/".to_string(),
            ],
            design_inventory: None,
        }
    }
}

impl Config {
    pub fn is_facade_exempt(&self, rel: &str) -> bool {
        self.facade_exempt.iter().any(|p| rel.starts_with(p))
    }
    pub fn is_engine_exempt(&self, rel: &str) -> bool {
        self.engine_exempt.iter().any(|p| rel.starts_with(p))
    }
    pub fn is_decode_hot(&self, rel: &str) -> bool {
        self.decode_hot_files.iter().any(|p| p == rel)
    }
    pub fn is_inventory_exempt(&self, rel: &str) -> bool {
        self.inventory_exempt.iter().any(|p| rel.starts_with(p))
    }
    pub fn is_safety_tag_exempt(&self, rel: &str) -> bool {
        self.safety_tag_exempt.iter().any(|p| rel.starts_with(p))
    }
    pub fn is_serve_path(&self, rel: &str) -> bool {
        self.serve_paths.iter().any(|p| rel.starts_with(p))
    }
    pub fn is_delta_path(&self, rel: &str) -> bool {
        self.delta_paths.iter().any(|p| rel.starts_with(p))
    }
}

/// The loaded workspace: every lexed `.rs` file plus the config.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub config: Config,
}

impl Workspace {
    /// Walks `root` for `.rs` files (skipping `target`, dot-dirs, and
    /// `crates/lint/fixtures` — the known-bad corpus must not flag the
    /// tree that carries it), lexes each, and loads the DESIGN.md
    /// inventory block if present.
    pub fn load(root: &Path, mut config: Config) -> Workspace {
        let mut paths = Vec::new();
        collect_rs_files(root, root, &mut paths);
        paths.sort();
        let files = paths
            .into_iter()
            .filter_map(|(abs, rel)| {
                std::fs::read_to_string(&abs)
                    .ok()
                    .map(|text| SourceFile::parse(&rel, text))
            })
            .collect();
        if config.design_inventory.is_none() {
            if let Ok(design) = std::fs::read_to_string(root.join("DESIGN.md")) {
                config.design_inventory = crate::rules::inventory::extract_design_block(&design);
            }
        }
        Workspace { files, config }
    }

    /// Builds a workspace from in-memory files (fixture harness entry).
    pub fn from_files(files: Vec<SourceFile>, config: Config) -> Workspace {
        Workspace { files, config }
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, String)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            let rel = rel_str(root, &path);
            if rel == "crates/lint/fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            out.push((path.clone(), rel_str(root, &path)));
        }
    }
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// A static-analysis rule. Per-file rules implement [`Rule::check_file`];
/// cross-file rules (the atomic inventory, safety-tag cross-referencing)
/// implement [`Rule::check_workspace`]. Either may push findings.
pub trait Rule {
    /// Stable name (CLI `--rule`, baseline entries, JSON output).
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules` and the docs.
    fn description(&self) -> &'static str;
    fn check_file(&self, _file: &SourceFile, _ws: &Workspace, _out: &mut Vec<Finding>) {}
    fn check_workspace(&self, _ws: &Workspace, _out: &mut Vec<Finding>) {}
}

/// The full rule catalog, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(rules::facade::Facade),
        Box::new(rules::relaxed::Relaxed),
        Box::new(rules::unsafe_rule::UnsafeJustified),
        Box::new(rules::recovery::Recovery),
        Box::new(rules::engine_only::EngineOnly),
        Box::new(rules::decode::DecodeAlloc),
        Box::new(rules::inventory::AtomicInventory),
        Box::new(rules::safety_tag::SafetyTag),
        Box::new(rules::graphview::GraphViewDiscipline),
        Box::new(rules::delta::DeltaOverlay),
        Box::new(rules::pipeline::PipelineLegality),
        Box::new(rules::must_use::DroppedReport),
        Box::new(rules::socket_timeout::SocketTimeout),
    ]
}

/// Outcome of one engine run, pre-baseline and post-baseline.
pub struct Report {
    /// Findings not absorbed by the baseline (what the run reports).
    pub findings: Vec<Finding>,
    /// Findings absorbed by a live baseline entry.
    pub suppressed: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Runs `rules` (all, or the named subset) over `ws`, then applies the
/// baseline: matched entries absorb their findings; stale and expired
/// entries surface as `baseline` meta-findings so the suppression file
/// can never silently rot.
pub fn run(ws: &Workspace, rule_filter: Option<&str>, baseline: &Baseline) -> Report {
    let rules = all_rules();
    let mut raw = Vec::new();
    for rule in &rules {
        if let Some(name) = rule_filter {
            if rule.name() != name {
                continue;
            }
        }
        for file in &ws.files {
            rule.check_file(file, ws, &mut raw);
        }
        rule.check_workspace(ws, &mut raw);
    }
    raw.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    let (findings, suppressed) = baseline.apply(raw);
    Report {
        findings,
        suppressed,
        files_scanned: ws.files.len(),
    }
}
