//! Property-based tests for the individual algorithm kernels, checked
//! against independent oracles (Tarjan for SCC facts, union-find for weak
//! connectivity).

use proptest::prelude::*;
use swscc_core::state::AlgoState;
use swscc_core::tarjan::tarjan_scc;
use swscc_core::trim::par_trim;
use swscc_core::trim2::par_trim2;
use swscc_core::wcc::par_wcc;
use swscc_graph::CsrGraph;

fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (1..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..4 * n)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

/// Plain union-find, the oracle for weak connectivity.
struct Dsu(Vec<u32>);
impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n as u32).collect())
    }
    fn find(&mut self, x: u32) -> u32 {
        if self.0[x as usize] != x {
            let r = self.find(self.0[x as usize]);
            self.0[x as usize] = r;
        }
        self.0[x as usize]
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra as usize] = rb;
        }
    }
}

proptest! {
    #[test]
    fn trim_resolves_exactly_a_subset_of_trivial_sccs(g in arb_graph(60)) {
        let oracle = tarjan_scc(&g);
        let sizes = oracle.component_sizes();
        let state = AlgoState::new(&g);
        let resolved = par_trim(&state);
        let mut seen = 0;
        for v in 0..g.num_nodes() as u32 {
            if !state.alive(v) {
                seen += 1;
                prop_assert_eq!(
                    sizes[oracle.component(v) as usize], 1,
                    "trim removed node {} from a size-{} SCC",
                    v, sizes[oracle.component(v) as usize]
                );
            }
        }
        prop_assert_eq!(seen, resolved);
    }

    #[test]
    fn trim_is_complete_on_dags(g in arb_graph(60)) {
        // build the condensation of a random graph: a DAG where trim must
        // resolve every node
        let oracle = tarjan_scc(&g);
        let dag = oracle.condensation(&g);
        let state = AlgoState::new(&dag);
        let resolved = par_trim(&state);
        prop_assert_eq!(resolved, dag.num_nodes(), "trim must fully peel a DAG");
    }

    #[test]
    fn trim2_resolves_only_real_size2_sccs(g in arb_graph(60)) {
        let oracle = tarjan_scc(&g);
        let sizes = oracle.component_sizes();
        let state = AlgoState::new(&g);
        let resolved = par_trim2(&state);
        prop_assert!(resolved.is_multiple_of(2));
        for v in 0..g.num_nodes() as u32 {
            if !state.alive(v) {
                prop_assert_eq!(sizes[oracle.component(v) as usize], 2);
            }
        }
    }

    #[test]
    fn trim2_pairs_are_mutual(g in arb_graph(50)) {
        let state = AlgoState::new(&g);
        par_trim2(&state);
        // every resolved node's partner (same component) is also resolved,
        // and the two have mutual edges
        let oracle = tarjan_scc(&g);
        for v in 0..g.num_nodes() as u32 {
            if !state.alive(v) {
                let partner = (0..g.num_nodes() as u32)
                    .find(|&u| u != v && oracle.same_component(u, v));
                let partner = partner.expect("size-2 SCC has a partner");
                prop_assert!(!state.alive(partner));
                prop_assert!(g.has_edge(v, partner) && g.has_edge(partner, v));
            }
        }
    }

    #[test]
    fn wcc_groups_equal_union_find_components(g in arb_graph(60)) {
        let n = g.num_nodes();
        let state = AlgoState::new(&g);
        let out = par_wcc(&state);
        let mut dsu = Dsu::new(n);
        for (u, v) in g.edges() {
            if u != v {
                dsu.union(u, v);
            }
        }
        // same number of groups
        let roots: Vec<u32> = (0..n as u32).map(|v| dsu.find(v)).collect();
        let mut distinct = roots.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(out.groups.len(), distinct.len());
        // and identical membership: nodes share a wcc color iff same root
        let color_of: Vec<u32> = (0..n as u32).map(|v| state.color(v)).collect();
        for a in 0..n {
            for b in (a + 1)..n {
                prop_assert_eq!(
                    color_of[a] == color_of[b],
                    roots[a] == roots[b],
                    "nodes {} and {}", a, b
                );
            }
        }
    }

    #[test]
    fn kernels_compose_with_oracle_partition(g in arb_graph(50)) {
        // run trim, trim2, then wcc — afterwards every alive color class is
        // a union of whole SCCs (no kernel may split an SCC)
        let oracle = tarjan_scc(&g);
        let state = AlgoState::new(&g);
        par_trim(&state);
        par_trim2(&state);
        par_wcc(&state);
        for a in 0..g.num_nodes() as u32 {
            for b in 0..g.num_nodes() as u32 {
                if oracle.same_component(a, b) {
                    prop_assert_eq!(state.alive(a), state.alive(b));
                    if state.alive(a) {
                        prop_assert_eq!(state.color(a), state.color(b),
                            "SCC of {} and {} split across colors", a, b);
                    }
                }
            }
        }
    }
}
