//! Rule (a) — atomic inventory: enumerates every file's atomic types and
//! memory orderings from the token stream and diffs the result against
//! the generated inventory block in DESIGN.md §8, so the documented
//! concurrency surface can never silently drift from the code. Also
//! enforces §8's invariant 1 mechanically: the only ordering stronger
//! than `Relaxed` in the substrate is the work-queue termination pair.
//!
//! The generated block lives between these markers in DESIGN.md:
//!
//! ```text
//! <!-- lint:atomic-inventory:begin -->
//! …one line per file…
//! <!-- lint:atomic-inventory:end -->
//! ```
//!
//! Regenerate with `cargo run -p xtask -- lint --update-inventory`.

use std::collections::BTreeSet;

use crate::engine::{Finding, Rule, Workspace};
use crate::rules::Code;

pub const BEGIN_MARKER: &str = "<!-- lint:atomic-inventory:begin -->";
pub const END_MARKER: &str = "<!-- lint:atomic-inventory:end -->";

/// The std atomic type names (the facade re-exports the same names).
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Files allowed to use orderings stronger than `Relaxed`: the
/// work-queue termination protocol is the one true Release/Acquire pair
/// (DESIGN.md §8, invariant 1).
const STRONG_ORDERING_OK: &[&str] = &["crates/parallel/src/workqueue.rs"];

/// One file's extracted atomic surface.
#[derive(Debug, PartialEq, Eq)]
pub struct FileInventory {
    pub file: String,
    pub atomics: BTreeSet<String>,
    pub orderings: BTreeSet<String>,
}

/// Extracts the inventory over every in-scope file (inventory-exempt
/// prefixes, tests/benches paths, and `#[cfg(test)]` regions excluded).
pub fn extract(ws: &Workspace) -> Vec<FileInventory> {
    let mut out = Vec::new();
    for file in &ws.files {
        if ws.config.is_inventory_exempt(&file.rel_path) || file.path_is_test() {
            continue;
        }
        let code = Code::new(file);
        let mut atomics = BTreeSet::new();
        let mut orderings = BTreeSet::new();
        for i in 0..code.len() {
            if file.in_test_code(code.offset(i)) {
                continue;
            }
            let t = code.text(i);
            if ATOMIC_TYPES.contains(&t) {
                atomics.insert(t.to_string());
            }
            if t == "Ordering" {
                for o in ORDERINGS {
                    if code.path_at(i, &["Ordering", o]) {
                        orderings.insert(o.to_string());
                    }
                }
            }
        }
        if !atomics.is_empty() || !orderings.is_empty() {
            out.push(FileInventory {
                file: file.rel_path.clone(),
                atomics,
                orderings,
            });
        }
    }
    out.sort_by(|a, b| a.file.cmp(&b.file));
    out
}

/// Renders the canonical block body (one line per file, no markers).
pub fn render(inv: &[FileInventory]) -> String {
    let mut out = String::new();
    for f in inv {
        let join = |s: &BTreeSet<String>| {
            if s.is_empty() {
                "-".to_string()
            } else {
                s.iter().cloned().collect::<Vec<_>>().join(",")
            }
        };
        out.push_str(&format!(
            "{}: atomics={} orderings={}\n",
            f.file,
            join(&f.atomics),
            join(&f.orderings)
        ));
    }
    out
}

/// Pulls the generated block body out of DESIGN.md (text between the
/// markers, minus any ``` fence lines).
pub fn extract_design_block(design: &str) -> Option<String> {
    let start = design.find(BEGIN_MARKER)? + BEGIN_MARKER.len();
    let end = design[start..].find(END_MARKER)? + start;
    let body: String = design[start..end]
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim().starts_with("```"))
        .map(|l| format!("{}\n", l.trim_end()))
        .collect();
    Some(body)
}

/// Replaces the generated block in `design` with `body`, returning the
/// new DESIGN.md text (None if the markers are missing).
pub fn splice_design_block(design: &str, body: &str) -> Option<String> {
    let start = design.find(BEGIN_MARKER)? + BEGIN_MARKER.len();
    let end = design[start..].find(END_MARKER)? + start;
    Some(format!(
        "{}\n```text\n{}```\n{}{}",
        &design[..start],
        body,
        END_MARKER,
        &design[end + END_MARKER.len()..]
    ))
}

pub struct AtomicInventory;

impl Rule for AtomicInventory {
    fn name(&self) -> &'static str {
        "inventory"
    }

    fn description(&self) -> &'static str {
        "extracted atomic inventory matches DESIGN.md §8; strong orderings only in the work queue"
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let inv = extract(ws);

        // Invariant 1: no ordering stronger than Relaxed outside the
        // work-queue termination protocol.
        for f in &inv {
            if STRONG_ORDERING_OK.contains(&f.file.as_str()) {
                continue;
            }
            for o in &f.orderings {
                if o != "Relaxed" {
                    out.push(Finding {
                        rule: self.name(),
                        file: f.file.clone(),
                        line: 0,
                        message: format!(
                            "`Ordering::{o}` outside the work-queue termination protocol — \
                             DESIGN.md §8 invariant 1: add a join, not a fence"
                        ),
                        anchor: format!("ordering:{o}"),
                    });
                }
            }
        }

        // Diff against the DESIGN.md generated block.
        let Some(documented) = &ws.config.design_inventory else {
            out.push(Finding {
                rule: self.name(),
                file: "DESIGN.md".to_string(),
                line: 0,
                message: format!(
                    "no generated atomic-inventory block found (expected between \
                     `{BEGIN_MARKER}` and `{END_MARKER}` in §8); add the markers and run \
                     `cargo run -p xtask -- lint --update-inventory`"
                ),
                anchor: "missing-inventory-block".to_string(),
            });
            return;
        };
        let actual = render(&inv);
        let doc_lines: BTreeSet<&str> = documented.lines().collect();
        let act_lines: BTreeSet<&str> = actual.lines().collect();
        for missing in act_lines.difference(&doc_lines) {
            out.push(Finding {
                rule: self.name(),
                file: "DESIGN.md".to_string(),
                line: 0,
                message: format!(
                    "atomic inventory drift — code has `{missing}` but DESIGN.md §8 doesn't; \
                     run `cargo run -p xtask -- lint --update-inventory` and document the \
                     new protocol in the §8 table"
                ),
                anchor: (*missing).to_string(),
            });
        }
        for gone in doc_lines.difference(&act_lines) {
            out.push(Finding {
                rule: self.name(),
                file: "DESIGN.md".to_string(),
                line: 0,
                message: format!(
                    "atomic inventory drift — DESIGN.md §8 documents `{gone}` but the code \
                     no longer matches; run `cargo run -p xtask -- lint --update-inventory`"
                ),
                anchor: (*gone).to_string(),
            });
        }
    }
}
