//! Criterion microbenchmarks: runtime substrate (work queue, bitset,
//! frontier, the `EdgeMap` traversal kernel) and the distributed BSP
//! pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rayon::prelude::*;
use std::hint::black_box;
use swscc_distributed::dist_scc;
use swscc_graph::bfs::{self, Direction, UNREACHED};
use swscc_graph::datasets::Dataset;
use swscc_graph::{CsrGraph, NodeId};
use swscc_parallel::pool::with_pool;
use swscc_parallel::{AtomicBitSet, Frontier, TwoLevelQueue};
use swscc_sync::atomic::{AtomicU32, AtomicUsize, Ordering};

fn bench_workqueue(c: &mut Criterion) {
    let mut group = c.benchmark_group("workqueue");
    group.sample_size(10);
    // 10k pre-seeded trivial tasks, swept over K — the §4.3 batching axis.
    for k in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("drain-10k", k), &k, |b, &k| {
            b.iter(|| {
                let q = TwoLevelQueue::new(k);
                for i in 0..10_000usize {
                    q.push_global(i);
                }
                let sum = AtomicUsize::new(0);
                q.run(2, |i, _| {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
                black_box(sum.load(Ordering::Relaxed))
            })
        });
    }
    // Self-spawning tree: stresses local-queue push + spill.
    group.bench_function("spawn-tree", |b| {
        b.iter(|| {
            let q = TwoLevelQueue::new(8);
            q.push_global(14u32);
            let leaves = AtomicUsize::new(0);
            q.run(2, |n, w| {
                if n < 2 {
                    leaves.fetch_add(1, Ordering::Relaxed);
                } else {
                    w.push(n - 1);
                    w.push(n - 2);
                }
            });
            black_box(leaves.load(Ordering::Relaxed))
        })
    });
    group.finish();
}

fn bench_bitset(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset");
    group.sample_size(20);
    group.bench_function("set-1m", |b| {
        b.iter(|| {
            let bits = AtomicBitSet::new(1 << 20);
            for i in (0..1 << 20).step_by(3) {
                bits.set(i);
            }
            black_box(bits.count_ones())
        })
    });
    group.bench_function("iter-ones", |b| {
        let bits = AtomicBitSet::new(1 << 20);
        for i in (0..1 << 20).step_by(7) {
            bits.set(i);
        }
        b.iter(|| black_box(bits.iter_ones().sum::<usize>()))
    });
    group.finish();
}

/// The seed implementation of `par_bfs_levels` before the `EdgeMap` port,
/// kept verbatim as the parity baseline: per-level parallel
/// `flat_map_iter` + `collect`, allocating a fresh frontier vector per
/// level.
fn par_bfs_levels_seed(g: &CsrGraph, src: NodeId, dir: Direction) -> Vec<u32> {
    let n = g.num_nodes();
    let mut levels_atomic: Vec<AtomicU32> = Vec::with_capacity(n);
    levels_atomic.resize_with(n, || AtomicU32::new(UNREACHED));
    if n == 0 {
        return Vec::new();
    }
    levels_atomic[src as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![src];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let next: Vec<NodeId> = frontier
            .par_iter()
            .flat_map_iter(|&u| dir.neighbors(g, u).iter().copied())
            .filter(|&v| {
                levels_atomic[v as usize].load(Ordering::Relaxed) == UNREACHED
                    && levels_atomic[v as usize]
                        .compare_exchange(UNREACHED, depth, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
            })
            .collect();
        frontier = next;
    }
    levels_atomic
        .into_iter()
        .map(AtomicU32::into_inner)
        .collect()
}

/// The `EdgeMap` kernel vs the seed per-level-collect BFS, on the two web
/// analogs with the most different giant-SCC shapes (LiveJournal 79%,
/// Baidu 28%), swept over thread counts. The acceptance bar: the kernel
/// port at parity or faster than the seed implementation.
fn bench_edge_map_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge-map-bfs");
    group.sample_size(10);
    for d in [Dataset::Livej, Dataset::Baidu] {
        let g = d.generate(0.05, 42);
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        for threads in [1usize, 2, 4] {
            let id = format!("{}/t{}", d.name(), threads);
            group.bench_function(BenchmarkId::new("seed-collect", &id), |b| {
                b.iter(|| {
                    with_pool(threads, || {
                        black_box(par_bfs_levels_seed(black_box(&g), 0, Direction::Forward))
                    })
                })
            });
            group.bench_function(BenchmarkId::new("kernel", &id), |b| {
                b.iter(|| {
                    with_pool(threads, || {
                        black_box(bfs::par_bfs_levels(black_box(&g), 0, Direction::Forward))
                    })
                })
            });
            group.bench_function(BenchmarkId::new("kernel-dobfs", &id), |b| {
                b.iter(|| {
                    with_pool(threads, || {
                        black_box(bfs::par_bfs_levels_dobfs(
                            black_box(&g),
                            0,
                            Direction::Forward,
                        ))
                    })
                })
            });
        }
    }
    group.finish();
}

/// Frontier advancement in isolation: double-buffered reuse vs a fresh
/// allocation+collect per level, on a synthetic constant-width expansion.
fn bench_frontier(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier");
    group.sample_size(20);
    const WIDTH: u32 = 4096;
    const LEVELS: usize = 64;
    group.throughput(Throughput::Elements((WIDTH as usize * LEVELS) as u64));
    group.bench_function("advance-reuse", |b| {
        let mut f = Frontier::with_capacity(WIDTH as usize);
        b.iter(|| {
            f.seed(0..WIDTH);
            for _ in 0..LEVELS {
                f.advance(2, |chunk, out| {
                    for &v in chunk {
                        out.push(v.wrapping_add(1));
                    }
                });
            }
            black_box(f.len())
        })
    });
    group.bench_function("collect-per-level", |b| {
        b.iter(|| {
            let mut frontier: Vec<u32> = (0..WIDTH).collect();
            for _ in 0..LEVELS {
                frontier = frontier.par_iter().map(|&v| v.wrapping_add(1)).collect();
            }
            black_box(frontier.len())
        })
    });
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed");
    group.sample_size(10);
    let g = Dataset::Livej.generate(0.05, 42);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("dist-scc", workers), &workers, |b, &w| {
            b.iter(|| {
                let (r, _) = dist_scc(black_box(&g), w);
                black_box(r.num_components())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_workqueue,
    bench_bitset,
    bench_frontier,
    bench_edge_map_bfs,
    bench_distributed
);
criterion_main!(benches);
