//! Runtime configuration for the parallel SCC methods.

pub use swscc_parallel::liveset::CompactionPolicy;

/// How Par-FWBW chooses its pivot when hunting for the giant SCC (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PivotStrategy {
    /// Uniformly random unresolved node (the paper's choice; "u <- pick any
    /// node in G"). Deterministic for a given seed.
    Random {
        /// Seed for pivot sampling.
        seed: u64,
    },
    /// The unresolved node maximizing `in_degree * out_degree` — a
    /// heuristic (used by later work such as Slota et al.'s Multistep) that
    /// almost always lands inside the giant SCC on the first trial.
    /// Provided as an ablation (`ablation_pivot` harness).
    MaxDegreeProduct,
}

/// What a checked driver does when a worker panic is caught (the
/// `*_scc_checked` entry points; legacy `*_scc` functions re-panic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanicPolicy {
    /// Recover: retry a task that died at the work-queue boundary once,
    /// then degrade to a sequential Tarjan pass (on the surviving residue
    /// after a boundary panic, or on the whole graph after a mid-task
    /// panic that may have left partial claims). Recovery steps are
    /// recorded in [`crate::instrument::RunReport::recoveries`].
    Fallback,
    /// Fail fast: surface [`crate::SccError::WorkerPanic`] immediately.
    Fail,
}

/// Which Par-WCC implementation Method 2 uses (§3.3 / §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WccImpl {
    /// The paper's Algorithm 7: min-label propagation with pointer
    /// jumping. Iteration count grows with component diameter (the §5
    /// CA-road pathology).
    LabelPropagation,
    /// Lock-free union-find (Afforest-style): near-constant work per edge,
    /// diameter-independent. Extension; compared by `ablation_wcc`.
    UnionFind,
}

/// Configuration shared by Baseline / Method 1 / Method 2.
///
/// The defaults mirror the paper: 1% giant-SCC threshold, random pivots,
/// the hybrid set representation enabled (§4.1), and per-method work-queue
/// batch sizes (K=1 for Baseline and Method 1, K=8 for Method 2 — §4.3)
/// applied automatically when [`SccConfig::k`] is `None`.
#[derive(Clone, Copy, Debug)]
pub struct SccConfig {
    /// Worker threads for both the data-parallel phase (rayon pool) and the
    /// task-parallel phase (work-queue workers).
    pub threads: usize,
    /// Work-queue batch parameter K; `None` selects the paper's per-method
    /// default (Baseline/Method 1: 1, Method 2: 8).
    pub k: Option<usize>,
    /// Par-FWBW stops early once it finds an SCC containing at least this
    /// fraction of the graph's nodes ("an SCC containing, say 1% of the
    /// nodes" — §3.2).
    pub giant_threshold: f64,
    /// Maximum Par-FWBW pivot trials before giving up on finding the giant
    /// SCC ("or after a predefined number of iterations" — §3.2).
    pub max_trials: usize,
    /// Pivot selection strategy for both phases.
    pub pivot: PivotStrategy,
    /// Use the hybrid set representation (Color array + compact per-task
    /// member lists) in the recursive phase. Disabling falls back to
    /// scanning the full Color array per pivot pick — the single-
    /// representation mode the paper measured as ~10x slower (§4.1).
    pub hybrid_sets: bool,
    /// Record the first this-many recursive FW-BW task executions
    /// (SCC/FW/BW/Remain sizes) in the run report — the §3.3 log. 0 = off.
    pub task_log_limit: usize,
    /// Which WCC kernel Method 2's re-partitioning step uses.
    pub wcc_impl: WccImpl,
    /// Use direction-optimizing BFS (Beamer et al., the paper's ref. \[10\])
    /// in the phase-1 peel: switch to bottom-up sweeps once the frontier
    /// covers a large fraction of the unexplored partition. Off by default
    /// (the paper's evaluation uses plain level-synchronous BFS); the
    /// `ablation_dobfs` harness measures the difference.
    pub direction_optimizing: bool,
    /// Frontier size below which a traversal level expands sequentially
    /// (the hybrid per-level expansion of the `EdgeMap` kernel — fork-join
    /// overhead exceeds the work on the tiny ramp-up/ramp-down levels that
    /// bracket a small-world BFS).
    pub par_frontier_threshold: usize,
    /// When the live-residue vertex subset compacts at phase boundaries
    /// (after the trims, the giant-SCC peel, and each Coloring/Multistep
    /// hand-off). `Auto` (default) compacts when at most half the current
    /// candidates are still alive, making every post-peel full-sweep kernel
    /// O(|residue|); `Never` keeps the pre-LiveSet O(N) sweeps (the
    /// ablation baseline); `Always` compacts at every boundary.
    pub live_set_compaction: CompactionPolicy,
    /// Recovery policy for caught worker panics (checked drivers only).
    pub on_panic: PanicPolicy,
    /// Watchdog headroom: every fixpoint loop aborts with
    /// [`crate::SccError::NonConvergence`] after
    /// `watchdog_factor × theoretical_max` rounds. The theoretical bounds
    /// are generous (≥ N rounds), so the default factor of 4 never trips
    /// on correct kernels; 0 trips every watchdog on its first round
    /// (test hook for the non-convergence path).
    pub watchdog_factor: usize,
    /// First-round pivot batch size for the `multisearch` stage; the
    /// batch doubles every round. Small first batches keep early rounds
    /// cheap while a giant SCC may still dominate the residue; the
    /// doubling blankets a residue of many small SCCs in O(log) rounds.
    pub multisearch_batch: usize,
    /// Vertex budget of one incremental repair: a back-edge merge search
    /// or a delete-dirty residue larger than this degrades to a full
    /// recompute (the incremental engine's correctness does not depend
    /// on the value — only how much work a single mutation may localize
    /// before the batch pipeline is cheaper anyway).
    pub incremental_residue_limit: usize,
}

impl Default for SccConfig {
    fn default() -> Self {
        SccConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            k: None,
            giant_threshold: 0.01,
            max_trials: 5,
            pivot: PivotStrategy::Random { seed: 0x5CC },
            hybrid_sets: true,
            task_log_limit: 0,
            wcc_impl: WccImpl::LabelPropagation,
            direction_optimizing: false,
            par_frontier_threshold: swscc_graph::traverse::DEFAULT_PAR_FRONTIER_THRESHOLD,
            live_set_compaction: CompactionPolicy::Auto,
            on_panic: PanicPolicy::Fallback,
            watchdog_factor: 4,
            multisearch_batch: 8,
            incremental_residue_limit: 1 << 16,
        }
    }
}

impl SccConfig {
    /// A config with the given thread count and defaults otherwise.
    pub fn with_threads(threads: usize) -> Self {
        SccConfig {
            threads: threads.max(1),
            ..Default::default()
        }
    }

    /// Resolves the work-queue K for a method whose paper default is
    /// `method_default`.
    pub fn resolve_k(&self, method_default: usize) -> usize {
        self.k.unwrap_or(method_default).max(1)
    }

    /// The traversal-kernel configuration implied by this config.
    pub fn traversal(&self) -> swscc_graph::traverse::TraversalConfig {
        swscc_graph::traverse::TraversalConfig {
            par_threshold: self.par_frontier_threshold.max(1),
            direction_optimizing: self.direction_optimizing,
            alpha: swscc_graph::traverse::DEFAULT_DOBFS_ALPHA,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SccConfig::default();
        assert!(c.threads >= 1);
        assert_eq!(c.k, None);
        assert!((c.giant_threshold - 0.01).abs() < 1e-12);
        assert_eq!(c.max_trials, 5);
        assert!(c.hybrid_sets);
        assert_eq!(c.task_log_limit, 0);
        assert_eq!(c.par_frontier_threshold, 256);
        assert!(!c.direction_optimizing);
        assert_eq!(c.live_set_compaction, CompactionPolicy::Auto);
        assert_eq!(c.on_panic, PanicPolicy::Fallback);
        assert_eq!(c.watchdog_factor, 4);
        assert_eq!(c.multisearch_batch, 8);
        assert_eq!(c.incremental_residue_limit, 1 << 16);
    }

    #[test]
    fn traversal_config_from_scc_config() {
        let c = SccConfig {
            direction_optimizing: true,
            par_frontier_threshold: 64,
            ..Default::default()
        };
        let t = c.traversal();
        assert!(t.direction_optimizing);
        assert_eq!(t.par_threshold, 64);
    }

    #[test]
    fn resolve_k_prefers_explicit() {
        let mut c = SccConfig::default();
        assert_eq!(c.resolve_k(8), 8);
        c.k = Some(3);
        assert_eq!(c.resolve_k(8), 3);
        c.k = Some(0);
        assert_eq!(c.resolve_k(8), 1, "K clamps to >= 1");
    }

    #[test]
    fn with_threads_clamps() {
        assert_eq!(SccConfig::with_threads(0).threads, 1);
        assert_eq!(SccConfig::with_threads(4).threads, 4);
    }
}
