//! Deterministic schedule-exploration runtime (only compiled under
//! `--cfg model`).
//!
//! # How it works
//!
//! Virtual threads are *real OS threads* serialized by a token protocol:
//! one global `Mutex<State>` + `Condvar`, with `state.active` naming the
//! single thread allowed to run. Every instrumented operation (atomic
//! access, lock acquire/release, spawn/join, `yield_now`, `spin_loop`)
//! calls [`Runtime::yield_point`], which picks the next runnable thread
//! (seeded random walk or PCT priorities), hands it the token, and blocks
//! the current thread until the token comes back. The result is a fully
//! deterministic interleaving per `(seed, strategy)` pair.
//!
//! # Memory model
//!
//! Per atomic location the runtime keeps the *modification order* (the
//! list of stores, each stamped with the storing thread's vector clock at
//! `Release` strength) plus per-thread vector clocks. A load may read any
//! store not yet "hidden" from the loading thread:
//!
//! * a store is hidden if the loading thread's clock already covers a
//!   *later* store in modification order (per-location coherence), and
//! * `Acquire` loads join the release clock of the store they read,
//!   establishing happens-before.
//!
//! `Relaxed` loads therefore *can return stale values* — which is exactly
//! what lets the checker reproduce the pre-PR-2 work-queue termination bug
//! (a `Relaxed` decrement whose effect the terminating thread never
//! observes). Simplifications, documented and deliberate:
//!
//! * RMWs (`fetch_*`, `compare_exchange`) always read the latest store in
//!   modification order (C11 coherence requires atomic RMWs to read the
//!   last value) and extend the release sequence of the store they modify.
//! * `SeqCst` is modeled as `AcqRel` + read-latest. We lose exotic SC
//!   fence distinctions, but the workspace has no SeqCst fences.
//! * Locations are keyed by address; a freed-and-reallocated atomic at the
//!   same address within one run would alias. Explore bodies allocate
//!   their structures up front, so this does not arise in practice.
//!
//! # Exploration API
//!
//! [`explore`] runs a closure under many seeds, counts *distinct*
//! schedules via trace hashing, and on failure shrinks the recorded
//! schedule to a minimal failing prefix and returns a [`Failure`] with a
//! replayable seed. [`replay`] re-runs one exact seed for debugging.

pub mod atomic;
pub mod lock;
pub mod thread;

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Sentinel panic payload used to unwind virtual threads when a run is
/// aborted (failure detected elsewhere, step bound exceeded). The
/// catch_unwind wrapper recognizes and swallows it.
pub(crate) struct ModelAbort;

thread_local! {
    /// Identity of the current virtual thread, if any. `None` means "not
    /// inside an explore session" — instrumented primitives then fall back
    /// to the real std/parking_lot behavior.
    pub(crate) static CURRENT: std::cell::RefCell<Option<(Arc<Runtime>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Ambient runtime handle + virtual thread id for the calling OS thread,
/// if it is a registered virtual thread of an active session.
pub(crate) fn current() -> Option<(Arc<Runtime>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(Arc<Runtime>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// Vector clock: index = virtual thread id, value = that thread's
/// operation sequence number last known to happen-before here.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn set(&mut self, tid: usize, v: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = self.0[tid].max(v);
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            self.0[i] = self.0[i].max(v);
        }
    }

    /// True if `self` already covers `other` (other happened-before self).
    fn covers(&self, other: &VClock) -> bool {
        other
            .0
            .iter()
            .enumerate()
            .all(|(i, &v)| v == 0 || self.get(i) >= v)
    }

    fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Runnable (running iff tid == state.active).
    Runnable,
    /// Blocked on a lock / join; woken threads re-check their predicate.
    Blocked,
    Finished,
}

pub(crate) struct ThreadState {
    pub(crate) status: Status,
    /// Happens-before clock of this thread.
    pub(crate) clock: VClock,
    /// Monotone per-thread operation counter (drives its own clock entry).
    pub(crate) seq: u64,
    /// PCT priority (lower = preferred). Random strategy ignores it.
    priority: u64,
    /// `State::wake_gen` value at this thread's last failed block_on
    /// predicate check — deadlock detection only trusts a Blocked status
    /// once the thread has re-checked against the latest state.
    checked_gen: u64,
}

/// One recorded scheduling decision. Only *real* decisions (≥ 2 options)
/// are recorded, so traces stay short and hashable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Choice {
    /// Scheduler picked the `idx`-th of ≥2 runnable threads.
    Thread(usize),
    /// A load picked the `idx`-th of ≥2 visible stores.
    Read(usize),
}

/// Per-location store history entry.
#[derive(Clone)]
pub(crate) struct StoreEntry {
    pub(crate) value: u64,
    /// Release clock: joined into the reader's clock on Acquire loads.
    /// All-zero for Relaxed stores that continue no release sequence.
    pub(crate) release: VClock,
    /// Writer's clock at store time — used for coherence: a reader whose
    /// clock covers this stamp may no longer read *earlier* stores.
    pub(crate) stamp: VClock,
}

pub(crate) struct Location {
    /// Modification order. `stores[0]` is the initialization value.
    pub(crate) stores: Vec<StoreEntry>,
    /// Per-thread index of the newest store each thread has read-from or
    /// written (per-location coherence floor).
    pub(crate) seen: Vec<usize>,
}

impl Location {
    pub(crate) fn seen_floor(&mut self, tid: usize) -> usize {
        if self.seen.len() <= tid {
            self.seen.resize(tid + 1, 0);
        }
        self.seen[tid]
    }

    pub(crate) fn note_seen(&mut self, tid: usize, idx: usize) {
        if self.seen.len() <= tid {
            self.seen.resize(tid + 1, 0);
        }
        self.seen[tid] = self.seen[tid].max(idx);
    }
}

#[derive(Default)]
pub(crate) struct LockState {
    pub(crate) writer: bool,
    /// Read-holder count (RwLock; a plain Mutex only uses `writer`).
    pub(crate) readers: usize,
    /// Clock released by the last unlocker; joined on acquire.
    pub(crate) clock: VClock,
}

pub(crate) struct State {
    pub(crate) threads: Vec<ThreadState>,
    /// Which virtual thread currently holds the run token.
    pub(crate) active: usize,
    rng: u64,
    steps: u64,
    max_steps: u64,
    /// Recorded decisions of this run.
    pub(crate) trace: Vec<Choice>,
    /// When shrinking: follow this prefix, then fall back to the
    /// deterministic first-option rule.
    replay: Option<Vec<Choice>>,
    replay_pos: usize,
    pub(crate) locations: HashMap<usize, Location>,
    pub(crate) locks: HashMap<usize, LockState>,
    /// Bumped by every mutation that can turn a block_on predicate true
    /// (lock releases, thread completions). See `ThreadState::checked_gen`.
    pub(crate) wake_gen: u64,
    /// First failure observed (virtual-thread panic message, deadlock, or
    /// step-bound violation).
    pub(crate) failure: Option<String>,
    /// Once set, every scheduling point unwinds with [`ModelAbort`].
    pub(crate) abort: bool,
    strategy: Strategy,
    /// PCT: remaining step indices at which the running thread is demoted.
    change_points: Vec<u64>,
    next_priority: u64,
}

impl State {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 — tiny, seedable, dependency-free.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn rand_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Pick among `n` alternatives, honoring a replay prefix first and
    /// recording the decision when there are ≥ 2 options.
    pub(crate) fn decide(
        &mut self,
        kind: fn(usize) -> Choice,
        n: usize,
        pct_pick: Option<usize>,
    ) -> usize {
        if n == 1 {
            return 0;
        }
        let idx = if let Some(prefix) = &self.replay {
            if self.replay_pos < prefix.len() {
                let c = prefix[self.replay_pos];
                self.replay_pos += 1;
                match c {
                    // A stale prefix entry (possible while shrinking) may
                    // point past the current option count; clamp so replay
                    // stays deterministic instead of panicking.
                    Choice::Thread(i) | Choice::Read(i) => i.min(n - 1),
                }
            } else {
                // Past the prefix: deterministic first option so shrunk
                // schedules replay identically.
                0
            }
        } else if let Some(p) = pct_pick {
            p
        } else {
            self.rand_below(n)
        };
        self.trace.push(kind(idx));
        idx
    }

    fn pct_pick(&self, runnable: &[usize]) -> Option<usize> {
        match self.strategy {
            Strategy::Random => None,
            Strategy::Pct { .. } => runnable
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| self.threads[t].priority)
                .map(|(i, _)| i),
        }
    }

    fn runnable_except(&self, skip: Option<usize>) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(i, t)| Some(*i) != skip && t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Exploration strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Uniform seeded random walk over runnable threads and visible stores.
    Random,
    /// PCT-style: static priorities with `change_points` demotion points —
    /// finds bugs of depth ≤ d+1 with known probability bounds.
    Pct { change_points: usize },
}

pub struct Runtime {
    state: Mutex<State>,
    cv: Condvar,
}

impl Runtime {
    fn new(
        seed: u64,
        max_steps: u64,
        strategy: Strategy,
        replay: Option<Vec<Choice>>,
    ) -> Arc<Self> {
        let mut st = State {
            threads: Vec::new(),
            active: 0,
            rng: seed ^ 0xD6E8_FEB8_6659_FD93,
            steps: 0,
            max_steps,
            trace: Vec::new(),
            replay,
            replay_pos: 0,
            locations: HashMap::new(),
            locks: HashMap::new(),
            wake_gen: 0,
            failure: None,
            abort: false,
            strategy,
            change_points: Vec::new(),
            next_priority: 0,
        };
        if let Strategy::Pct { change_points } = strategy {
            // Sample change-point step indices up front, PCT-style.
            for _ in 0..change_points {
                let p = st.next_u64() % max_steps.max(1);
                st.change_points.push(p);
            }
            st.change_points.sort_unstable();
        }
        Arc::new(Runtime {
            state: Mutex::new(st),
            cv: Condvar::new(),
        })
    }

    /// Lock the state, tolerating poison: a virtual thread unwinding with
    /// [`ModelAbort`] can drop the guard mid-panic, which poisons the std
    /// mutex even though the State itself stays consistent (every mutation
    /// completes before any panic_any call).
    pub(crate) fn st(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn register_thread(st: &mut State) -> usize {
        let tid = st.threads.len();
        let priority = st.next_priority;
        st.next_priority += 1;
        st.threads.push(ThreadState {
            status: Status::Runnable,
            clock: VClock::default(),
            seq: 0,
            priority,
            checked_gen: 0,
        });
        tid
    }

    /// Advance `tid`'s own clock entry (a new operation by this thread).
    pub(crate) fn tick(st: &mut State, tid: usize) {
        st.threads[tid].seq += 1;
        let seq = st.threads[tid].seq;
        st.threads[tid].clock.set(tid, seq);
    }

    fn check_abort(&self, st: &State) {
        if st.abort {
            self.cv.notify_all();
            std::panic::panic_any(ModelAbort);
        }
    }

    fn all_stuck(st: &State) -> bool {
        st.threads.iter().all(|t| t.status != Status::Runnable)
            && st.threads.iter().any(|t| t.status == Status::Blocked)
    }

    /// True deadlock: everyone is stuck *and* every blocked thread has
    /// re-evaluated its predicate against the latest wake generation and
    /// found it still false. Without the generation check a waiter whose
    /// predicate just turned true but who has not polled yet would be
    /// mistaken for deadlocked by a faster-waking peer.
    fn deadlocked(st: &State) -> bool {
        Self::all_stuck(st)
            && st
                .threads
                .iter()
                .all(|t| t.status != Status::Blocked || t.checked_gen == st.wake_gen)
    }

    fn declare_deadlock(&self, st: &mut State) -> ! {
        if st.failure.is_none() {
            let blocked: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Blocked)
                .map(|(i, _)| i)
                .collect();
            // Held locks are the usual suspects — name them in the report.
            let held: Vec<String> = st
                .locks
                .iter()
                .filter(|(_, l)| l.writer || l.readers > 0)
                .map(|(a, l)| {
                    format!(
                        "{a:#x}:{}",
                        if l.writer {
                            "writer".to_string()
                        } else {
                            format!("{} readers", l.readers)
                        }
                    )
                })
                .collect();
            st.failure = Some(format!(
                "deadlock: threads {blocked:?} all blocked (held locks: [{}])",
                held.join(", ")
            ));
        }
        st.abort = true;
        self.cv.notify_all();
        std::panic::panic_any(ModelAbort);
    }

    /// The heart of the scheduler: called (with the state lock held) at
    /// every instrumented operation. Picks the next thread to run, wakes
    /// it, and blocks until this thread regains the token. Unwinds with
    /// [`ModelAbort`] if the run is aborted.
    pub(crate) fn yield_point<'rt>(
        self: &'rt Arc<Self>,
        mut g: MutexGuard<'rt, State>,
        tid: usize,
    ) -> MutexGuard<'rt, State> {
        self.check_abort(&g);
        // Fault-injection extension: a `fault::FaultPlan` targeting the
        // `model-yield` site fires at the k-th scheduling point of this
        // run (k is deterministic per seed, hence replayable).
        // recovery: an injected panic is converted into a recorded
        // schedule failure and the run aborts through the normal
        // ModelAbort path — same as the step-bound trip below.
        if let Err(p) = std::panic::catch_unwind(|| crate::fault::point("model-yield")) {
            if g.failure.is_none() {
                g.failure = Some(crate::fault::panic_text(p.as_ref()));
            }
            g.abort = true;
            self.cv.notify_all();
            std::panic::panic_any(ModelAbort);
        }
        g.steps += 1;
        if g.steps > g.max_steps {
            if g.failure.is_none() {
                g.failure = Some(format!(
                    "step bound exceeded ({} scheduling points): possible \
                     livelock or unbounded spin; raise Options::max_steps if \
                     the protocol legitimately needs more",
                    g.max_steps
                ));
            }
            g.abort = true;
            self.cv.notify_all();
            std::panic::panic_any(ModelAbort);
        }
        // PCT: at a change point, demote the running thread.
        let step = g.steps;
        if g.change_points.first().is_some_and(|&p| p <= step) {
            g.change_points.remove(0);
            let np = g.next_priority;
            g.next_priority += 1;
            g.threads[tid].priority = np;
        }
        let runnable = g.runnable_except(None);
        debug_assert!(!runnable.is_empty(), "caller is runnable");
        let pct = g.pct_pick(&runnable);
        let idx = g.decide(Choice::Thread, runnable.len(), pct);
        let next = runnable[idx];
        if next != tid {
            g.active = next;
            self.cv.notify_all();
            g = self.wait_for_token(g, tid);
        }
        g
    }

    /// Block until `active == tid` and we are Runnable; unwinds on abort.
    pub(crate) fn wait_for_token<'rt>(
        self: &'rt Arc<Self>,
        mut g: MutexGuard<'rt, State>,
        tid: usize,
    ) -> MutexGuard<'rt, State> {
        while g.active != tid || g.threads[tid].status != Status::Runnable {
            self.check_abort(&g);
            if g.threads[tid].status == Status::Blocked && Self::deadlocked(&g) {
                self.declare_deadlock(&mut g);
            }
            g = self.wait_ms(g, 50);
        }
        self.check_abort(&g);
        g
    }

    /// Block the current thread (`status = Blocked`) until `pred` holds
    /// *while this thread holds the run token*. Used by model locks and
    /// join.
    ///
    /// The outer loop is essential: between observing `pred` and regaining
    /// the token, the still-running token holder can invalidate it again
    /// (e.g. re-acquire the lock this thread was admitted to). Returning
    /// without the re-check would let the caller stamp its claim over
    /// occupied lock state and then block on the *real* lock — invisible
    /// to the scheduler, with status still Runnable, wedging the whole
    /// session beyond the reach of deadlock detection.
    pub(crate) fn block_on<'rt, F: Fn(&State) -> bool>(
        self: &'rt Arc<Self>,
        mut g: MutexGuard<'rt, State>,
        tid: usize,
        pred: F,
    ) -> MutexGuard<'rt, State> {
        loop {
            // Token held here (entry: caller is active; re-entry:
            // wait_for_token returned) — a true pred cannot be stolen.
            if pred(&g) {
                return g;
            }
            g.threads[tid].status = Status::Blocked;
            g.threads[tid].checked_gen = g.wake_gen;
            self.hand_off(&mut g, tid);
            loop {
                self.check_abort(&g);
                if pred(&g) {
                    g.threads[tid].status = Status::Runnable;
                    // If nobody holds the token (all others blocked or
                    // finished), claim it; otherwise wait to be scheduled.
                    if g.threads[g.active].status != Status::Runnable {
                        g.active = tid;
                    }
                    self.cv.notify_all();
                    g = self.wait_for_token(g, tid);
                    break; // re-check pred with the token held
                }
                g.threads[tid].checked_gen = g.wake_gen;
                if Self::deadlocked(&g) {
                    self.declare_deadlock(&mut g);
                }
                g = self.wait_ms(g, 50);
            }
        }
    }

    /// Give the token away to any runnable thread (used when blocking or
    /// finishing). If nobody is runnable, waiters' deadlock checks fire.
    pub(crate) fn hand_off(self: &Arc<Self>, g: &mut MutexGuard<'_, State>, tid: usize) {
        if g.active != tid {
            self.cv.notify_all();
            return;
        }
        let runnable = g.runnable_except(Some(tid));
        if !runnable.is_empty() {
            let pct = g.pct_pick(&runnable);
            let idx = g.decide(Choice::Thread, runnable.len(), pct);
            g.active = runnable[idx];
        }
        self.cv.notify_all();
    }

    pub(crate) fn wake_all(&self) {
        self.cv.notify_all();
    }

    /// Record a virtual-thread failure (first wins) and abort the run.
    pub(crate) fn fail(&self, msg: String) {
        let mut st = self.st();
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Bounded park on the condvar: a lost wakeup in the harness itself
    /// must not hang the exploration forever.
    fn wait_ms<'rt>(&self, g: MutexGuard<'rt, State>, ms: u64) -> MutexGuard<'rt, State> {
        match self.cv.wait_timeout(g, Duration::from_millis(ms)) {
            Ok((g, _)) => g,
            Err(e) => e.into_inner().0,
        }
    }
}

// ---------------------------------------------------------------------------
// Exploration API
// ---------------------------------------------------------------------------

/// Options for [`explore`].
#[derive(Clone, Debug)]
pub struct Options {
    /// Number of schedules (seeds) to run.
    pub iterations: u64,
    /// Base seed; iteration `i` runs with seed `base_seed + i`.
    pub base_seed: u64,
    /// Per-run scheduling-point bound (livelock detector).
    pub max_steps: u64,
    pub strategy: Strategy,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            iterations: 1000,
            base_seed: 0x5CC0_5CC0,
            max_steps: 100_000,
            strategy: Strategy::Random,
        }
    }
}

/// Outcome of an [`explore`] session.
#[derive(Debug)]
pub struct Report {
    /// Schedules actually executed (stops early on first failure).
    pub iterations: u64,
    /// Distinct schedules (unique decision traces) among them.
    pub distinct_schedules: u64,
    pub failure: Option<Failure>,
}

/// A failing schedule, replayable via its `seed`.
#[derive(Debug)]
pub struct Failure {
    /// Seed that produced the failure (pass to [`replay`]).
    pub seed: u64,
    pub strategy: Strategy,
    /// The failure message (assertion text, deadlock, step bound, ...).
    pub message: String,
    /// Length of the full failing decision trace.
    pub trace_len: usize,
    /// Length after prefix minimization (shrinking).
    pub shrunk_len: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failure [replay seed {:#x}, strategy {:?}, trace {} choices, \
             shrunk to {}]: {}",
            self.seed, self.strategy, self.trace_len, self.shrunk_len, self.message
        )
    }
}

/// Run `body` once under the model with the given seed/options; returns
/// the recorded trace and failure (if any).
fn run_once<F: Fn() + Send + Sync>(
    seed: u64,
    opts: &Options,
    replay_prefix: Option<Vec<Choice>>,
    body: &F,
) -> (Vec<Choice>, Option<String>) {
    let rt = Runtime::new(seed, opts.max_steps, opts.strategy, replay_prefix);
    // The body runs as virtual thread 0 on the *current* OS thread.
    let tid = {
        let mut st = rt.st();
        let tid = Runtime::register_thread(&mut st);
        st.active = tid;
        tid
    };
    set_current(Some((rt.clone(), tid)));
    // recovery: an assertion failure in the explored body becomes the
    // iteration's recorded failure (with its replay seed); a ModelAbort
    // unwind is the scheduler's own teardown signal. Either way the
    // runtime state is finalized below and the next iteration starts
    // from a fresh Runtime.
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    set_current(None);
    if let Err(payload) = res {
        if payload.downcast_ref::<ModelAbort>().is_none() {
            // as_ref(): pass the payload itself, not the Box, as the Any.
            rt.fail(panic_message(payload.as_ref()));
        }
    }
    {
        let mut st = rt.st();
        st.threads[tid].status = Status::Finished;
        // Completion can satisfy join predicates (see wake_gen).
        st.wake_gen += 1;
        // If the body returned while child virtual threads were unjoined
        // (scope() prevents this on normal paths), abort so they unwind.
        if st.threads.iter().any(|t| t.status != Status::Finished) {
            st.abort = true;
        }
        rt.cv.notify_all();
    }
    let st = rt.st();
    (st.trace.clone(), st.failure.clone())
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "virtual thread panicked (non-string payload)".to_string()
    }
}

/// Explore `opts.iterations` schedules of `body`. The body must be
/// re-runnable (construct its own state each call). On the first failing
/// schedule, shrinks it and returns early with a replayable [`Failure`].
pub fn explore<F: Fn() + Send + Sync>(opts: Options, body: F) -> Report {
    let mut distinct: HashSet<u64> = HashSet::new();
    let mut ran = 0u64;
    for i in 0..opts.iterations {
        let seed = opts.base_seed.wrapping_add(i);
        let (trace, failure) = run_once(seed, &opts, None, &body);
        ran += 1;
        distinct.insert(hash_trace(&trace));
        if let Some(message) = failure {
            let shrunk_len = shrink(seed, &opts, &trace, &body);
            return Report {
                iterations: ran,
                distinct_schedules: distinct.len() as u64,
                failure: Some(Failure {
                    seed,
                    strategy: opts.strategy,
                    message,
                    trace_len: trace.len(),
                    shrunk_len,
                }),
            };
        }
    }
    Report {
        iterations: ran,
        distinct_schedules: distinct.len() as u64,
        failure: None,
    }
}

/// Re-run a single seed (e.g. one reported by a [`Failure`]). Returns the
/// failure message if the run fails again.
pub fn replay<F: Fn() + Send + Sync>(seed: u64, opts: Options, body: F) -> Option<String> {
    run_once(seed, &opts, None, &body).1
}

/// Prefix minimization: binary-search the shortest replay prefix of the
/// failing trace that still fails (decisions past the prefix fall back to
/// the deterministic first-option rule). Returns the shrunk length.
fn shrink<F: Fn() + Send + Sync>(seed: u64, opts: &Options, trace: &[Choice], body: &F) -> usize {
    let fails_with = |len: usize| -> bool {
        run_once(seed, opts, Some(trace[..len].to_vec()), body)
            .1
            .is_some()
    };
    // The full trace replayed as a prefix should fail by construction; if
    // the deterministic tail diverges (possible when clamped Read choices
    // shift store counts), report the unshrunk length.
    if !fails_with(trace.len()) {
        return trace.len();
    }
    let (mut lo, mut hi) = (0usize, trace.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails_with(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

fn hash_trace(trace: &[Choice]) -> u64 {
    // FNV-1a over the decision stream — cheap, deterministic, no deps.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for c in trace {
        let (tag, v) = match *c {
            Choice::Thread(i) => (1u64, i as u64),
            Choice::Read(i) => (2u64, i as u64),
        };
        for b in [tag, v] {
            h ^= b;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
    }
    h
}
