//@ path: crates/core/src/bad_must_use.rs
//! Known-bad: dropped `run_checked` / `run_pipeline` results.

pub fn statement_drop(g: &CsrGraph, cfg: &SccConfig, guard: &RunGuard) {
    run_checked(g, Algorithm::Method2, cfg, guard); //~ must-use
}

pub fn let_underscore_drop(g: &CsrGraph, p: &Pipeline, cfg: &SccConfig, guard: &RunGuard) {
    let _ = run_pipeline(g, p, cfg, guard); //~ must-use
}

pub fn receiver_chain_drop(queue: &TwoLevelQueue<u32>, intr: &Interrupt) {
    queue.run_checked(4, intr, |_t, _w| {}); //~ must-use
}

pub fn bound_is_used(g: &CsrGraph, cfg: &SccConfig, guard: &RunGuard) -> bool {
    let r = run_checked(g, Algorithm::Method2, cfg, guard);
    r.is_ok()
}

pub fn chained_is_used(g: &CsrGraph, cfg: &SccConfig, guard: &RunGuard) {
    run_checked(g, Algorithm::Method2, cfg, guard).unwrap();
}

pub fn propagated_is_used(
    g: &CsrGraph,
    cfg: &SccConfig,
    guard: &RunGuard,
) -> Result<(), SccError> {
    run_checked(g, Algorithm::Method2, cfg, guard)?;
    Ok(())
}

pub fn justified_drop(g: &CsrGraph, cfg: &SccConfig, guard: &RunGuard) {
    // report: warm-up run — only the pool-spinup side effects matter here.
    run_checked(g, Algorithm::Method2, cfg, guard);
}

pub fn dropped_canceller(guard: &RunGuard) {
    guard.canceller(); //~ must-use
}

pub fn stored_canceller_is_used(guard: &RunGuard) -> Canceller {
    guard.canceller()
}

pub fn cancelling_through_is_used(guard: &RunGuard) {
    guard.canceller().cancel();
}
