//@ path: crates/core/src/bad_unsafe.rs
//! Known-bad: `unsafe` without a `// SAFETY:` argument.

pub fn naked_deref(p: *const u32) -> u32 {
    unsafe { *p } //~ unsafe
}

/// // SAFETY: prose in a doc comment does not satisfy the rule.
pub fn doc_comment_evasion(p: *const u32) -> u32 {
    unsafe { *p } //~ unsafe
}

pub fn string_evasion(p: *const u32) -> u32 {
    let _s = "// SAFETY: in a string";
    unsafe { *p } //~ unsafe
}

pub fn ident_is_not_the_keyword() {
    let unsafe_looking = 1;
    let _ = unsafe_looking;
}

pub fn justified(p: *const u32) -> u32 {
    // SAFETY: [inv:good-tag] fixture negative — caller passes a valid pointer.
    unsafe { *p }
}
