//! Road-network generator (the CA-road analog).
//!
//! §5 of the paper uses CA-road as the *negative* case: an (almost) planar
//! graph with diameter ~850 that violates every small-world assumption —
//! level-synchronous BFS needs hundreds of levels, the WCC label propagation
//! needs many iterations, and the SCC size distribution contains many
//! mid-sized components instead of a power-law tail (Fig. 9(i)).
//!
//! The analog is a 2D street lattice: most street segments are two-way
//! (mutual edges), a configurable fraction are one-way (random single
//! direction, matching the Table 1 footnote's random orientation of the
//! undirected original), and a small fraction of segments are missing
//! (dead ends / city blocks), which fragments the strong connectivity into
//! the many mid-sized SCCs the paper observes.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`road_grid`].
#[derive(Clone, Copy, Debug)]
pub struct RoadGridConfig {
    /// Grid width (nodes per row).
    pub width: usize,
    /// Grid height (rows).
    pub height: usize,
    /// Fraction of street segments that are one-way (random direction).
    pub one_way_frac: f64,
    /// Fraction of street segments removed entirely.
    pub missing_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoadGridConfig {
    fn default() -> Self {
        RoadGridConfig {
            width: 300,
            height: 300,
            // Tuned so a 100x100 grid reproduces the CA-road SCC profile of
            // Table 1 / Fig. 9(i): giant SCC ≈ 60% of N and a long tail of
            // mid-sized SCCs (city blocks sealed off by one-way loops).
            one_way_frac: 0.8,
            missing_frac: 0.12,
            seed: 42,
        }
    }
}

/// Generates a road-network lattice. N = width * height; edges connect each
/// node to its right and down neighbor (two-way, one-way, or missing per the
/// configured fractions).
///
/// # Examples
///
/// ```
/// use swscc_graph::gen::{road_grid, RoadGridConfig};
///
/// let g = road_grid(&RoadGridConfig { width: 10, height: 10, ..Default::default() });
/// assert_eq!(g.num_nodes(), 100);
/// ```
pub fn road_grid(cfg: &RoadGridConfig) -> CsrGraph {
    let n = cfg.width * cfg.height;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::with_capacity(n, 4 * n);
    let id = |x: usize, y: usize| (y * cfg.width + x) as NodeId;
    let add_segment = |b: &mut GraphBuilder, rng: &mut SmallRng, u: NodeId, v: NodeId| {
        if rng.random_bool(cfg.missing_frac) {
            return;
        }
        if rng.random_bool(cfg.one_way_frac) {
            if rng.random_bool(0.5) {
                b.add_edge(u, v);
            } else {
                b.add_edge(v, u);
            }
        } else {
            b.add_edge(u, v);
            b.add_edge(v, u);
        }
    };
    for y in 0..cfg.height {
        for x in 0..cfg.width {
            if x + 1 < cfg.width {
                add_segment(&mut b, &mut rng, id(x, y), id(x + 1, y));
            }
            if y + 1 < cfg.height {
                add_segment(&mut b, &mut rng, id(x, y), id(x, y + 1));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{bfs_levels, Direction, UNREACHED};

    #[test]
    fn node_count() {
        let g = road_grid(&RoadGridConfig {
            width: 20,
            height: 30,
            ..Default::default()
        });
        assert_eq!(g.num_nodes(), 600);
    }

    #[test]
    fn all_two_way_grid_is_strongly_connected() {
        let g = road_grid(&RoadGridConfig {
            width: 15,
            height: 15,
            one_way_frac: 0.0,
            missing_frac: 0.0,
            seed: 1,
        });
        let fw = bfs_levels(&g, 0, Direction::Forward);
        let bw = bfs_levels(&g, 0, Direction::Backward);
        assert!(fw.iter().all(|&l| l != UNREACHED));
        assert!(bw.iter().all(|&l| l != UNREACHED));
    }

    #[test]
    fn planar_grid_has_large_diameter() {
        let g = road_grid(&RoadGridConfig {
            width: 50,
            height: 50,
            one_way_frac: 0.0,
            missing_frac: 0.0,
            seed: 2,
        });
        let lv = bfs_levels(&g, 0, Direction::Forward);
        let max = lv.iter().copied().max().unwrap();
        // Manhattan distance corner-to-corner = 98.
        assert_eq!(max, 98);
    }

    #[test]
    fn edges_are_only_between_lattice_neighbors() {
        let w = 12usize;
        let g = road_grid(&RoadGridConfig {
            width: w,
            height: 9,
            ..Default::default()
        });
        for (u, v) in g.edges() {
            let (ux, uy) = (u as usize % w, u as usize / w);
            let (vx, vy) = (v as usize % w, v as usize / w);
            let manhattan = ux.abs_diff(vx) + uy.abs_diff(vy);
            assert_eq!(manhattan, 1, "non-lattice edge {u}->{v}");
        }
    }

    #[test]
    fn deterministic() {
        let cfg = RoadGridConfig {
            width: 25,
            height: 25,
            ..Default::default()
        };
        let a: Vec<_> = road_grid(&cfg).edges().collect();
        let b: Vec<_> = road_grid(&cfg).edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_fraction_reduces_edges() {
        let full = road_grid(&RoadGridConfig {
            width: 40,
            height: 40,
            one_way_frac: 0.0,
            missing_frac: 0.0,
            seed: 3,
        });
        let sparse = road_grid(&RoadGridConfig {
            width: 40,
            height: 40,
            one_way_frac: 0.0,
            missing_frac: 0.3,
            seed: 3,
        });
        assert!(sparse.num_edges() < full.num_edges());
    }
}
