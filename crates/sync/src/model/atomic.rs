//! Scheduler-instrumented atomics (model builds only).
//!
//! Each type wraps the *real* std atomic. Outside an explore session the
//! wrapper delegates straight through, so a `--cfg model` binary behaves
//! normally until a checker run starts. Inside a session every operation:
//!
//! 1. takes the runtime lock and hits a scheduling point (the scheduler
//!    may run other threads first — this is where interleavings come from),
//! 2. consults/updates the per-location store history with the weak-memory
//!    rules described in [`crate::model`] (Relaxed loads may read stale
//!    stores; Acquire loads join the release clock of the store they read;
//!    RMWs read the latest store and extend its release sequence),
//! 3. writes the latest modification-order value through to the real
//!    atomic, so `into_inner`/post-session reads observe the final state.
//!
//! Locations are keyed by the wrapper's address (see the module-level
//! aliasing caveat in [`crate::model`]).

use std::sync::atomic::Ordering;
use std::sync::MutexGuard;

use super::{current, Choice, Location, Runtime, State, StoreEntry, VClock};

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Ensure `addr` has a Location, seeding modification order with the real
/// atomic's current value (visible to everyone, zero stamp).
fn location<'a>(g: &'a mut MutexGuard<'_, State>, addr: usize, init: u64) -> &'a mut Location {
    g.locations.entry(addr).or_insert_with(|| Location {
        stores: vec![StoreEntry {
            value: init,
            release: VClock::default(),
            stamp: VClock::default(),
        }],
        seen: Vec::new(),
    })
}

/// Model load: pick a visible store (coherence floor = newest store this
/// thread has seen or happens-after), Acquire joins its release clock.
/// SeqCst reads the latest store (modeled simplification).
fn model_load(addr: usize, init: u64, order: Ordering) -> Option<u64> {
    let (rt, tid) = current()?;
    let mut g = rt.st();
    Runtime::tick(&mut g, tid);
    g = rt.yield_point(g, tid);
    let clock = g.threads[tid].clock.clone();
    let (floor, len) = {
        let loc = location(&mut g, addr, init);
        let mut floor = loc.seen_floor(tid);
        for j in (floor + 1)..loc.stores.len() {
            if !loc.stores[j].stamp.is_zero() && clock.covers(&loc.stores[j].stamp) {
                floor = j;
            }
        }
        (floor, loc.stores.len())
    };
    let idx = if order == Ordering::SeqCst {
        len - 1
    } else {
        floor + g.decide(Choice::Read, len - floor, None)
    };
    let loc = location(&mut g, addr, init);
    loc.note_seen(tid, idx);
    let entry = loc.stores[idx].clone();
    if is_acquire(order) {
        g.threads[tid].clock.join(&entry.release);
    }
    Some(entry.value)
}

/// Model store: appends to modification order. Release stores publish the
/// thread's clock as the new release-sequence head.
fn model_store(addr: usize, init: u64, val: u64, order: Ordering) -> Option<()> {
    let (rt, tid) = current()?;
    let mut g = rt.st();
    Runtime::tick(&mut g, tid);
    g = rt.yield_point(g, tid);
    let clock = g.threads[tid].clock.clone();
    let release = if is_release(order) {
        clock.clone()
    } else {
        VClock::default()
    };
    let loc = location(&mut g, addr, init);
    loc.stores.push(StoreEntry {
        value: val,
        release,
        stamp: clock,
    });
    let idx = loc.stores.len() - 1;
    loc.note_seen(tid, idx);
    Some(())
}

/// Model RMW: reads the latest store (C11 coherence for atomic RMWs),
/// applies `f`, and appends the result. The new store *continues the
/// release sequence*: its release clock inherits the previous entry's,
/// joined with this thread's clock when the RMW itself is Release.
fn model_rmw(addr: usize, init: u64, order: Ordering, f: impl FnOnce(u64) -> u64) -> Option<u64> {
    let (rt, tid) = current()?;
    let mut g = rt.st();
    Runtime::tick(&mut g, tid);
    g = rt.yield_point(g, tid);
    let clock = g.threads[tid].clock.clone();
    let loc = location(&mut g, addr, init);
    let prev = loc.stores.last().unwrap().clone();
    let mut release = prev.release.clone();
    if is_release(order) {
        release.join(&clock);
    }
    let mut stamp = clock;
    stamp.join(&prev.stamp);
    loc.stores.push(StoreEntry {
        value: f(prev.value),
        release,
        stamp,
    });
    let idx = loc.stores.len() - 1;
    loc.note_seen(tid, idx);
    if is_acquire(order) {
        let rel = prev.release.clone();
        g.threads[tid].clock.join(&rel);
    }
    Some(prev.value)
}

/// Model CAS. Success path is an RMW; failure path reads the latest store
/// with the failure ordering (simplification: failure loads don't go
/// stale — strictly fewer behaviors than C11 allows, never more).
#[allow(clippy::too_many_arguments)]
fn model_cas(
    addr: usize,
    init: u64,
    cur: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Option<Result<u64, u64>> {
    let (rt, tid) = current()?;
    let mut g = rt.st();
    Runtime::tick(&mut g, tid);
    g = rt.yield_point(g, tid);
    let clock = g.threads[tid].clock.clone();
    let loc = location(&mut g, addr, init);
    let prev = loc.stores.last().unwrap().clone();
    let idx = loc.stores.len() - 1;
    if prev.value == cur {
        let mut release = prev.release.clone();
        if is_release(success) {
            release.join(&clock);
        }
        let mut stamp = clock;
        stamp.join(&prev.stamp);
        loc.stores.push(StoreEntry {
            value: new,
            release,
            stamp,
        });
        let nidx = loc.stores.len() - 1;
        loc.note_seen(tid, nidx);
        if is_acquire(success) {
            let rel = prev.release.clone();
            g.threads[tid].clock.join(&rel);
        }
        Some(Ok(prev.value))
    } else {
        loc.note_seen(tid, idx);
        if is_acquire(failure) {
            let rel = prev.release.clone();
            g.threads[tid].clock.join(&rel);
        }
        Some(Err(prev.value))
    }
}

macro_rules! model_atomic_int {
    ($name:ident, $real:ty, $ty:ty) => {
        /// Instrumented drop-in for the std atomic of the same name.
        pub struct $name {
            real: $real,
        }

        impl $name {
            pub const fn new(v: $ty) -> Self {
                Self {
                    real: <$real>::new(v),
                }
            }

            fn addr(&self) -> usize {
                self as *const _ as usize
            }

            fn sync_real(&self, v: $ty) {
                // Write-through: keep the real atomic at the latest
                // modification-order value for into_inner/fallback reads.
                self.real.store(v, Ordering::SeqCst);
            }

            fn latest(&self) -> $ty {
                self.real.load(Ordering::SeqCst)
            }

            pub fn load(&self, order: Ordering) -> $ty {
                match model_load(self.addr(), self.latest() as u64, order) {
                    Some(v) => v as $ty,
                    None => self.real.load(order),
                }
            }

            pub fn store(&self, val: $ty, order: Ordering) {
                match model_store(self.addr(), self.latest() as u64, val as u64, order) {
                    Some(()) => self.sync_real(val),
                    None => self.real.store(val, order),
                }
            }

            pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                match model_rmw(self.addr(), self.latest() as u64, order, |_| val as u64) {
                    Some(old) => {
                        self.sync_real(val);
                        old as $ty
                    }
                    None => self.real.swap(val, order),
                }
            }

            pub fn compare_exchange(
                &self,
                cur: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match model_cas(
                    self.addr(),
                    self.latest() as u64,
                    cur as u64,
                    new as u64,
                    success,
                    failure,
                ) {
                    Some(Ok(old)) => {
                        self.sync_real(new);
                        Ok(old as $ty)
                    }
                    Some(Err(seen)) => Err(seen as $ty),
                    None => self.real.compare_exchange(cur, new, success, failure),
                }
            }

            /// Modeled as the strong variant (no spurious failures —
            /// strictly fewer behaviors than hardware allows, never more).
            pub fn compare_exchange_weak(
                &self,
                cur: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(cur, new, success, failure)
            }

            pub fn into_inner(self) -> $ty {
                self.real.into_inner()
            }

            pub fn get_mut(&mut self) -> &mut $ty {
                self.real.get_mut()
            }
        }

        impl $name {
            pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                self.rmw(order, |v| v.wrapping_add(val), |r| r.fetch_add(val, order))
            }

            pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                self.rmw(order, |v| v.wrapping_sub(val), |r| r.fetch_sub(val, order))
            }

            pub fn fetch_or(&self, val: $ty, order: Ordering) -> $ty {
                self.rmw(order, |v| v | val, |r| r.fetch_or(val, order))
            }

            pub fn fetch_and(&self, val: $ty, order: Ordering) -> $ty {
                self.rmw(order, |v| v & val, |r| r.fetch_and(val, order))
            }

            pub fn fetch_min(&self, val: $ty, order: Ordering) -> $ty {
                self.rmw(order, |v| v.min(val), |r| r.fetch_min(val, order))
            }

            pub fn fetch_max(&self, val: $ty, order: Ordering) -> $ty {
                self.rmw(order, |v| v.max(val), |r| r.fetch_max(val, order))
            }

            fn rmw(
                &self,
                order: Ordering,
                f: impl Fn($ty) -> $ty,
                fallback: impl FnOnce(&$real) -> $ty,
            ) -> $ty {
                match model_rmw(self.addr(), self.latest() as u64, order, |v| {
                    f(v as $ty) as u64
                }) {
                    Some(old) => {
                        self.sync_real(f(old as $ty));
                        old as $ty
                    }
                    None => fallback(&self.real),
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }

        impl From<$ty> for $name {
            fn from(v: $ty) -> Self {
                Self::new(v)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.load(Ordering::Relaxed))
                    .finish()
            }
        }
    };
}

model_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
model_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
model_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Instrumented drop-in for `std::sync::atomic::AtomicBool`.
pub struct AtomicBool {
    real: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self {
            real: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    fn latest(&self) -> u64 {
        self.real.load(Ordering::SeqCst) as u64
    }

    pub fn load(&self, order: Ordering) -> bool {
        match model_load(self.addr(), self.latest(), order) {
            Some(v) => v != 0,
            None => self.real.load(order),
        }
    }

    pub fn store(&self, val: bool, order: Ordering) {
        match model_store(self.addr(), self.latest(), val as u64, order) {
            Some(()) => self.real.store(val, Ordering::SeqCst),
            None => self.real.store(val, order),
        }
    }

    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        match model_rmw(self.addr(), self.latest(), order, |_| val as u64) {
            Some(old) => {
                self.real.store(val, Ordering::SeqCst);
                old != 0
            }
            None => self.real.swap(val, order),
        }
    }

    pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
        match model_rmw(self.addr(), self.latest(), order, |v| v | (val as u64)) {
            Some(old) => {
                self.real.store(old != 0 || val, Ordering::SeqCst);
                old != 0
            }
            None => self.real.fetch_or(val, order),
        }
    }

    pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
        match model_rmw(self.addr(), self.latest(), order, |v| v & (val as u64)) {
            Some(old) => {
                self.real.store(old != 0 && val, Ordering::SeqCst);
                old != 0
            }
            None => self.real.fetch_and(val, order),
        }
    }

    pub fn compare_exchange(
        &self,
        cur: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match model_cas(
            self.addr(),
            self.latest(),
            cur as u64,
            new as u64,
            success,
            failure,
        ) {
            Some(Ok(old)) => {
                self.real.store(new, Ordering::SeqCst);
                Ok(old != 0)
            }
            Some(Err(seen)) => Err(seen != 0),
            None => self.real.compare_exchange(cur, new, success, failure),
        }
    }

    /// Modeled as the strong variant (see the integer atomics).
    pub fn compare_exchange_weak(
        &self,
        cur: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.compare_exchange(cur, new, success, failure)
    }

    pub fn into_inner(self) -> bool {
        self.real.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut bool {
        self.real.get_mut()
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl From<bool> for AtomicBool {
    fn from(v: bool) -> Self {
        Self::new(v)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.load(Ordering::Relaxed))
            .finish()
    }
}
