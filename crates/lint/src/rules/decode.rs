//! Rule 6 — allocation-free decode loops: the compressed-CSR decode path
//! sits inside every kernel's innermost edge loop, so any heap
//! allocation there turns an O(1)-space neighbor stream into a per-edge
//! allocator visit. Non-test allocation in the configured hot files must
//! carry a `// decode:` comment arguing it is on a cold path
//! (construction, validation, materialization).

use crate::engine::{Finding, Rule, Workspace};
use crate::rules::{finding_at, Code};
use crate::source::SourceFile;

/// `Type::method` allocation constructors.
const ALLOC_PATHS: &[&[&str]] = &[
    &["Vec", "new"],
    &["Vec", "with_capacity"],
    &["Box", "new"],
    &["String", "new"],
    &["String", "with_capacity"],
    &["String", "from"],
];

/// `.method()` / `macro!` allocation forms (matched as a call ident).
const ALLOC_CALLS: &[&str] = &["to_vec", "collect", "to_string", "to_owned"];
const ALLOC_MACROS: &[&str] = &["vec", "format"];

pub struct DecodeAlloc;

impl Rule for DecodeAlloc {
    fn name(&self) -> &'static str {
        "decode"
    }

    fn description(&self) -> &'static str {
        "no heap allocation in neighbor-decode hot files without a `// decode:` cold-path argument"
    }

    fn check_file(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Finding>) {
        if !ws.config.is_decode_hot(&file.rel_path) {
            return;
        }
        let code = Code::new(file);
        for i in 0..code.len() {
            let what: Option<String> =
                if let Some(p) = ALLOC_PATHS.iter().find(|p| code.path_at(i, p)) {
                    Some(p.join("::"))
                } else if ALLOC_CALLS.iter().any(|c| code.is_call(i, c)) {
                    Some(format!(".{}()", code.text(i)))
                } else if ALLOC_MACROS.contains(&code.text(i))
                    && i + 1 < code.len()
                    && code.text(i + 1) == "!"
                {
                    Some(format!("{}!", code.text(i)))
                } else {
                    None
                };
            let Some(what) = what else { continue };
            if file.in_test_code(code.offset(i)) {
                continue; // tests collect neighbor streams to compare against oracles
            }
            if !file.has_justification(code.line(i), "// decode:") {
                out.push(finding_at(
                    &code,
                    i,
                    self.name(),
                    format!(
                        "`{what}` in the neighbor-decode hot path — move it off the per-edge \
                         loop, or add a `// decode:` comment arguing this is a cold \
                         (construction/validation) path"
                    ),
                ));
            }
        }
    }
}
