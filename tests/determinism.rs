//! Determinism and stability: seeded generators and repeated runs.

use swscc::graph::datasets::Dataset;
use swscc::{detect_scc, Algorithm, SccConfig};

#[test]
fn repeated_runs_identical_partition() {
    // Component *numbering* may differ across parallel schedules, but the
    // partition itself must be stable run to run.
    let g = Dataset::Livej.generate(0.05, 42);
    let cfg = SccConfig::with_threads(4);
    let (first, _) = detect_scc(&g, Algorithm::Method2, &cfg);
    let want = first.canonical_labels();
    for _ in 0..5 {
        let (r, _) = detect_scc(&g, Algorithm::Method2, &cfg);
        assert_eq!(r.canonical_labels(), want);
    }
}

#[test]
fn thread_count_does_not_change_partition() {
    let g = Dataset::Baidu.generate(0.05, 42);
    let (r1, _) = detect_scc(&g, Algorithm::Method1, &SccConfig::with_threads(1));
    let want = r1.canonical_labels();
    for threads in [2usize, 3, 8] {
        let (r, _) = detect_scc(&g, Algorithm::Method1, &SccConfig::with_threads(threads));
        assert_eq!(
            r.canonical_labels(),
            want,
            "partition changed at {threads} threads"
        );
    }
}

#[test]
fn pivot_strategy_does_not_change_partition() {
    let g = Dataset::Flickr.generate(0.05, 42);
    let random = SccConfig::default();
    let degree = SccConfig {
        pivot: swscc::PivotStrategy::MaxDegreeProduct,
        ..SccConfig::default()
    };
    let (a, _) = detect_scc(&g, Algorithm::Method2, &random);
    let (b, _) = detect_scc(&g, Algorithm::Method2, &degree);
    assert_eq!(a.canonical_labels(), b.canonical_labels());
}

#[test]
fn k_parameter_does_not_change_partition() {
    let g = Dataset::Wiki.generate(0.05, 42);
    let (want, _) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
    for k in [1usize, 4, 64] {
        let cfg = SccConfig {
            k: Some(k),
            ..SccConfig::with_threads(3)
        };
        let (r, _) = detect_scc(&g, Algorithm::Method2, &cfg);
        assert_eq!(r.canonical_labels(), want.canonical_labels(), "K={k}");
    }
}

#[test]
fn generator_seeds_are_stable_across_runs() {
    // Committed fingerprints would break on generator changes, so instead
    // assert within-process stability plus cross-seed divergence.
    for d in Dataset::all() {
        let a = d.generate(0.02, 123);
        let b = d.generate(0.02, 123);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}

#[test]
fn stress_repeated_small_runs_no_deadlock() {
    // The work queue must terminate promptly across many tiny runs (this
    // catches lost-wakeup/termination bugs that only strike occasionally).
    let g = Dataset::Orkut.generate(0.01, 1);
    for i in 0..40 {
        let cfg = SccConfig::with_threads(1 + i % 4);
        let (r, _) = detect_scc(&g, Algorithm::Method2, &cfg);
        assert!(r.num_components() > 0);
    }
}
