//! Differential/property battery for the MultiReach subsystem.
//!
//! Three layers:
//!
//! 1. **Pipeline ≡ Tarjan** — proptest over random digraphs plus fixed
//!    RMAT and bowtie shapes: every multisearch-terminated composition
//!    produces the Tarjan partition across 1/2/4 threads and all three
//!    live-set compaction policies.
//! 2. **ReachTable under contention** — resize-under-insert (concurrent
//!    inserters force repeated growth; nothing is lost, the count is
//!    exact) and the duplicate `(vertex, label)` race (all threads
//!    insert the same pairs; exactly one `true` per pair).
//! 3. **HashBag under contention** — racing claimants partition the
//!    published blocks (exactly-once delivery).

use proptest::prelude::*;
use swscc::core::tarjan::tarjan_scc;
use swscc::graph::gen::bowtie::{bowtie, BowtieConfig};
use swscc::graph::gen::rmat::{rmat, RmatConfig};
use swscc::parallel::{HashBag, ReachTable};
use swscc::{run_pipeline, CompactionPolicy, CsrGraph, Pipeline, RunGuard, SccConfig};

const POLICIES: [CompactionPolicy; 3] = [
    CompactionPolicy::Auto,
    CompactionPolicy::Always,
    CompactionPolicy::Never,
];

/// The multisearch compositions under differential test: bare, the
/// headline peel+multisearch tail, and after a WCC re-partition.
const SPECS: [&str; 3] = [
    "multisearch",
    "trim,fwbw,peel,multisearch",
    "trim,fwbw,trim2,trim,wcc,multisearch",
];

/// Strategy: a random directed graph with 1..=max_n nodes (self-loops and
/// parallel edges allowed).
fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (1..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..4 * n)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

fn assert_specs_match_tarjan(g: &CsrGraph, label: &str) {
    let want = tarjan_scc(g).canonical_labels();
    for spec in SPECS {
        let pipeline = Pipeline::parse(spec).unwrap();
        for threads in [1usize, 2, 4] {
            for policy in POLICIES {
                let cfg = SccConfig {
                    live_set_compaction: policy,
                    ..SccConfig::with_threads(threads)
                };
                let (r, report) = run_pipeline(g, &pipeline, &cfg, &RunGuard::new())
                    .unwrap_or_else(|e| panic!("{spec:?} on {label}: {e}"));
                assert_eq!(
                    r.canonical_labels(),
                    want,
                    "{spec:?} with {threads} threads under {policy:?} \
                     disagrees with tarjan on {label}"
                );
                let resolved: usize = report.phase_resolved.iter().map(|(_, n)| n).sum();
                assert_eq!(resolved, g.num_nodes(), "{spec:?} loses nodes on {label}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Multisearch pipelines ≡ Tarjan on random digraphs, × threads ×
    /// compaction policies.
    #[test]
    fn multisearch_pipelines_match_tarjan(g in arb_graph(120)) {
        assert_specs_match_tarjan(&g, "arb_graph");
    }

    /// Tiny graphs hammer the edge cases: empty residues, batch >
    /// residue, single-node SCCs.
    #[test]
    fn multisearch_pipelines_match_tarjan_tiny(g in arb_graph(8)) {
        assert_specs_match_tarjan(&g, "arb_graph_tiny");
    }
}

/// The same battery on the byte-delta compressed backend: the GraphView
/// seam must not perturb multisearch's sparse expansions or dense probes.
fn assert_compressed_specs_match_tarjan(g: &CsrGraph, label: &str) {
    use swscc::graph::CompressedCsr;
    let want = tarjan_scc(g).canonical_labels();
    let z = CompressedCsr::from_csr(g);
    for spec in SPECS {
        let pipeline = Pipeline::parse(spec).unwrap();
        for threads in [1usize, 2, 4] {
            for policy in POLICIES {
                let cfg = SccConfig {
                    live_set_compaction: policy,
                    ..SccConfig::with_threads(threads)
                };
                let (r, _) = run_pipeline(&z, &pipeline, &cfg, &RunGuard::new())
                    .unwrap_or_else(|e| panic!("{spec:?} on compressed {label}: {e}"));
                assert_eq!(
                    r.canonical_labels(),
                    want,
                    "{spec:?} with {threads} threads under {policy:?} \
                     disagrees with tarjan on compressed {label}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Compressed-backend axis over random digraphs: multisearch
    /// compositions ≡ Tarjan × threads × compaction policies.
    #[test]
    fn compressed_multisearch_pipelines_match_tarjan(g in arb_graph(80)) {
        assert_compressed_specs_match_tarjan(&g, "arb_graph");
    }
}

/// Compressed-backend axis on the fixed small-world shapes.
#[test]
fn compressed_multisearch_matches_tarjan_on_rmat_and_bowtie() {
    let shapes: Vec<(&str, CsrGraph)> = vec![
        ("rmat-s9", rmat(&RmatConfig::graph500(9, 8, 0x5cc))),
        (
            "bowtie-1200",
            bowtie(&BowtieConfig {
                num_nodes: 1200,
                ..Default::default()
            })
            .graph,
        ),
    ];
    for (label, g) in shapes {
        assert_compressed_specs_match_tarjan(&g, label);
    }
}

/// Fixed small-world shapes: the RMAT skew the paper targets and the
/// bowtie generator's giant-core + satellite structure.
#[test]
fn multisearch_matches_tarjan_on_rmat_and_bowtie() {
    let shapes: Vec<(&str, CsrGraph)> = vec![
        ("rmat-s9", rmat(&RmatConfig::graph500(9, 8, 0x5cc))),
        ("rmat-s10-sparse", rmat(&RmatConfig::graph500(10, 4, 7))),
        (
            "bowtie-1200",
            bowtie(&BowtieConfig {
                num_nodes: 1200,
                ..Default::default()
            })
            .graph,
        ),
    ];
    for (label, g) in shapes {
        assert_specs_match_tarjan(&g, label);
    }
}

// ---------------------------------------------------------------------------
// ReachTable contention
// ---------------------------------------------------------------------------

/// Concurrent inserters with disjoint key ranges force the table through
/// many growths; afterwards every key is present exactly once.
#[test]
fn reachtable_resize_under_concurrent_insert() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 20_000;
    let table = ReachTable::with_capacity(1);
    let small_cap = table.capacity();
    swscc::sync::thread::scope(|s| {
        for t in 0..THREADS {
            let table = &table;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let v = (t * PER_THREAD + i) as u32;
                    assert!(table.insert(v, v % 13), "disjoint keys are all new");
                }
            });
        }
    });
    assert_eq!(table.len(), THREADS * PER_THREAD);
    assert!(
        table.capacity() > small_cap,
        "the table must have grown under concurrent insertion"
    );
    for v in 0..(THREADS * PER_THREAD) as u32 {
        assert!(
            table.contains(v, v % 13),
            "lost ({v}, {}) in a resize",
            v % 13
        );
    }
    assert_eq!(table.pairs().len(), THREADS * PER_THREAD);
}

/// All threads insert the *same* pairs: for every pair exactly one
/// inserter wins, even across concurrent growth.
#[test]
fn reachtable_duplicate_pair_race_single_winner() {
    use swscc::sync::atomic::{AtomicUsize, Ordering};
    const THREADS: usize = 4;
    const PAIRS: usize = 5_000;
    let table = ReachTable::with_capacity(1);
    let wins: Vec<AtomicUsize> = (0..PAIRS).map(|_| AtomicUsize::new(0)).collect();
    swscc::sync::thread::scope(|s| {
        for _ in 0..THREADS {
            let (table, wins) = (&table, &wins);
            s.spawn(move || {
                for (i, w) in wins.iter().enumerate() {
                    if table.insert(i as u32, (i % 3) as u32) {
                        w.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(table.len(), PAIRS);
    for (i, w) in wins.iter().enumerate() {
        assert_eq!(
            w.load(Ordering::Relaxed),
            1,
            "pair {i} must have exactly one winning inserter"
        );
    }
}

// ---------------------------------------------------------------------------
// HashBag contention
// ---------------------------------------------------------------------------

/// Racing producers and (joined-after) racing claimants: every published
/// item is delivered to exactly one claimant and the counter is exact.
#[test]
fn hashbag_exactly_once_under_contention() {
    const PRODUCERS: usize = 4;
    const ITEMS: u64 = 10_000;
    let bag = HashBag::new();
    swscc::sync::thread::scope(|s| {
        for p in 0..PRODUCERS as u64 {
            let bag = &bag;
            s.spawn(move || {
                let mut block = Vec::new();
                for i in 0..ITEMS {
                    block.push(p * ITEMS + i);
                    if block.len() >= 64 {
                        bag.publish(&mut block);
                    }
                }
                bag.publish(&mut block);
            });
        }
    });
    assert_eq!(bag.len(), PRODUCERS as u64 as usize * ITEMS as usize);
    let claimed: Vec<Vec<u64>> = swscc::sync::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let bag = &bag;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    while let Some(block) = bag.claim() {
                        mine.extend(block.iter().copied());
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut all: Vec<u64> = claimed.into_iter().flatten().collect();
    all.sort_unstable();
    let want: Vec<u64> = (0..PRODUCERS as u64 * ITEMS).collect();
    assert_eq!(all, want, "every item delivered exactly once");
}
