//! Figure 6: performance on real-world graph instances.
//!
//! For every dataset analog: speedup of Baseline / Method 1 / Method 2 over
//! sequential Tarjan, across the thread sweep — the paper's nine sub-plots
//! as tables. (Absolute speedups require multicore hardware; on this
//! machine the *shape* — Method 2 ≥ Method 1 ≥ Baseline on small-world
//! instances, inversion on CA-road — is the reproduction target.)

use swscc_bench::{print_header, reps, scale, thread_sweep, time_algorithm};
use swscc_core::{Algorithm, SccConfig};
use swscc_graph::datasets::Dataset;

fn main() {
    print_header("Figure 6: speedup over Tarjan");
    let threads = thread_sweep();
    let reps = reps();
    let only: Option<Dataset> = std::env::args().nth(1).and_then(|s| Dataset::from_name(&s));

    // geo-mean of the best Method 2 speedup per small-world instance (the
    // paper's summary statistic: 14.05x on 16 cores / 32 HW threads)
    let mut best_m2: Vec<f64> = Vec::new();

    for d in Dataset::all() {
        if let Some(o) = only {
            if o != d {
                continue;
            }
        }
        let g = d.load(scale(), 42);
        let cfg1 = SccConfig::with_threads(1);
        let t_tarjan = time_algorithm(&g, Algorithm::Tarjan, &cfg1, reps);
        println!(
            "--- {} (N={}, M={}; tarjan {} ms)",
            d.name(),
            g.num_nodes(),
            g.num_edges(),
            swscc_bench::ms(t_tarjan)
        );
        print!("{:<10}", "threads");
        for a in Algorithm::parallel() {
            print!(" {:>10}", a.name());
        }
        println!("   (speedup vs tarjan)");
        let mut d_best_m2 = 0.0f64;
        for &t in &threads {
            let cfg = SccConfig::with_threads(t);
            print!("{:<10}", t);
            for a in Algorithm::parallel() {
                let dt = time_algorithm(&g, a, &cfg, reps);
                let speedup = t_tarjan.as_secs_f64() / dt.as_secs_f64();
                if a == Algorithm::Method2 {
                    d_best_m2 = d_best_m2.max(speedup);
                }
                print!(" {:>9.2}x", speedup);
            }
            println!();
        }
        if Dataset::small_world().contains(&d) {
            best_m2.push(d_best_m2);
        }
        println!();
    }

    if best_m2.len() > 1 {
        let geo = (best_m2.iter().map(|s| s.ln()).sum::<f64>() / best_m2.len() as f64).exp();
        println!(
            "geometric mean of best Method 2 speedups over {} small-world instances: {:.2}x",
            best_m2.len(),
            geo
        );
        println!("(paper, 16 cores / 32 HW threads: 14.05x; range 5.01x–29.41x)");
    }
}
