//! Epoch-snapshot payload of the always-on service: one immutable
//! partition plus its condensation DAG, with the query surface the
//! `swscc-serve` daemon answers from.
//!
//! A snapshot is built once per (re)compute — [`SccSnapshot::build`]
//! runs a pipeline under the caller's [`RunGuard`], then materializes
//! the condensation — and is then shared read-only behind an
//! `swscc_sync::epoch::EpochCell`. Nothing in here mutates after
//! construction, so any number of connection handlers can answer
//! queries from one snapshot while a recompute builds the next.
//!
//! Query cost model: [`SccSnapshot::scc_id`] and
//! [`SccSnapshot::same_scc`] are O(1) array reads;
//! [`SccSnapshot::condensation_reach`] is a BFS over the condensation
//! DAG (small-world condensations are tiny — the giant SCC collapses to
//! one node) that polls its guard every level, so a per-request deadline
//! interrupts it mid-walk with a typed [`SccError::DeadlineExceeded`].

use crate::config::SccConfig;
use crate::error::{RunGuard, SccError};
use crate::instrument::RunReport;
use crate::pipeline::{run_pipeline, Pipeline};
use crate::result::SccResult;
use swscc_graph::bfs::Direction;
use swscc_graph::{CsrGraph, GraphView, NodeId};

/// An immutable SCC partition + condensation DAG over one input graph,
/// ready to answer point queries. See the module docs for the role it
/// plays in the serve epoch cycle.
#[derive(Clone, Debug)]
pub struct SccSnapshot {
    result: SccResult,
    condensation: CsrGraph,
    num_nodes: usize,
    num_edges: usize,
}

impl SccSnapshot {
    /// Runs `pipeline` on `g` under `guard` and packages the partition
    /// with its condensation. Every failure is the pipeline's own typed
    /// error — a failed build leaves no half-snapshot behind.
    pub fn build<G: GraphView>(
        g: &G,
        pipeline: &Pipeline,
        cfg: &SccConfig,
        guard: &RunGuard,
    ) -> Result<(SccSnapshot, RunReport), SccError> {
        let (result, report) = run_pipeline(g, pipeline, cfg, guard)?;
        // The condensation streams the adjacency once more; honour a
        // deadline that expired during the partition run before paying
        // that second pass.
        guard.check()?;
        let condensation = result.condensation_view(g);
        Ok((
            SccSnapshot {
                condensation,
                num_nodes: g.num_nodes(),
                num_edges: g.num_edges(),
                result,
            },
            report,
        ))
    }

    /// Wraps an already-computed partition (tests, offline tooling).
    pub fn from_result<G: GraphView>(g: &G, result: SccResult) -> SccSnapshot {
        SccSnapshot {
            condensation: result.condensation_view(g),
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
            result,
        }
    }

    /// The partition.
    pub fn result(&self) -> &SccResult {
        &self.result
    }

    /// The condensation DAG (one node per SCC, inter-SCC edges
    /// deduplicated).
    pub fn condensation(&self) -> &CsrGraph {
        &self.condensation
    }

    /// Node count of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Directed edge count of the underlying graph.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of SCCs.
    pub fn num_components(&self) -> usize {
        self.result.num_components()
    }

    /// Component id of `u`, or `None` if `u` is out of range — the
    /// serve layer turns that into a typed out-of-range reply instead of
    /// an indexing panic on untrusted input.
    pub fn scc_id(&self, u: NodeId) -> Option<u32> {
        if (u as usize) < self.num_nodes {
            Some(self.result.component(u))
        } else {
            None
        }
    }

    /// Whether `u` and `v` are in the same SCC; `None` if either is out
    /// of range.
    pub fn same_scc(&self, u: NodeId, v: NodeId) -> Option<bool> {
        Some(self.scc_id(u)? == self.scc_id(v)?)
    }

    /// Whether `v` is reachable from `u` in the input graph — answered
    /// on the condensation (u reaches v iff scc(u) reaches scc(v) in the
    /// DAG). `Ok(None)` if either endpoint is out of range. Polls
    /// `guard` once per BFS level, so a request deadline lands as
    /// [`SccError::DeadlineExceeded`] rather than a stuck handler.
    pub fn condensation_reach(
        &self,
        u: NodeId,
        v: NodeId,
        guard: &RunGuard,
    ) -> Result<Option<bool>, SccError> {
        let (Some(from), Some(to)) = (self.scc_id(u), self.scc_id(v)) else {
            return Ok(None);
        };
        if from == to {
            return Ok(Some(true));
        }
        let dag = &self.condensation;
        let mut seen = vec![false; dag.num_nodes()];
        let mut frontier = vec![from];
        seen[from as usize] = true;
        while !frontier.is_empty() {
            guard.check()?;
            let mut next = Vec::new();
            let mut hit = false;
            for &c in &frontier {
                GraphView::for_each_neighbor_while(dag, Direction::Forward, c, |w| {
                    if w == to {
                        hit = true;
                        return false;
                    }
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        next.push(w);
                    }
                    true
                });
                if hit {
                    return Ok(Some(true));
                }
            }
            frontier = next;
        }
        Ok(Some(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use std::time::Duration;

    /// Two 3-cycles joined by one edge, an OUT tendril, an isolated node.
    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
                (7, 0),
            ],
        )
    }

    fn snapshot(g: &CsrGraph) -> SccSnapshot {
        let pipeline = Pipeline::stock(Algorithm::Method2).unwrap();
        let guard = RunGuard::new();
        let (snap, _report) =
            SccSnapshot::build(g, &pipeline, &SccConfig::with_threads(2), &guard).unwrap();
        snap
    }

    #[test]
    fn point_queries_match_partition() {
        let g = diamond();
        let snap = snapshot(&g);
        assert_eq!(snap.num_components(), 4); // {0,1,2}, {3,4,5}, {6}, {7}
        assert_eq!(snap.same_scc(0, 2), Some(true));
        assert_eq!(snap.same_scc(0, 3), Some(false));
        assert_eq!(snap.scc_id(0), snap.scc_id(1));
        assert_eq!(snap.scc_id(99), None);
        assert_eq!(snap.same_scc(0, 99), None);
    }

    #[test]
    fn condensation_reach_follows_dag() {
        let g = diamond();
        let snap = snapshot(&g);
        let guard = RunGuard::new();
        // Within an SCC, across the bridge, down the tendril.
        assert_eq!(snap.condensation_reach(0, 1, &guard), Ok(Some(true)));
        assert_eq!(snap.condensation_reach(0, 5, &guard), Ok(Some(true)));
        assert_eq!(snap.condensation_reach(1, 6, &guard), Ok(Some(true)));
        assert_eq!(snap.condensation_reach(7, 6, &guard), Ok(Some(true)));
        // Never backwards.
        assert_eq!(snap.condensation_reach(3, 0, &guard), Ok(Some(false)));
        assert_eq!(snap.condensation_reach(6, 0, &guard), Ok(Some(false)));
        assert_eq!(snap.condensation_reach(0, 7, &guard), Ok(Some(false)));
        // Out of range is typed, not a panic.
        assert_eq!(snap.condensation_reach(0, 99, &guard), Ok(None));
    }

    #[test]
    fn reach_honours_an_expired_deadline() {
        let g = diamond();
        let snap = snapshot(&g);
        let guard = RunGuard::with_deadline(Duration::ZERO);
        assert_eq!(
            snap.condensation_reach(0, 6, &guard),
            Err(SccError::DeadlineExceeded)
        );
    }

    #[test]
    fn build_over_compressed_backend_matches_raw() {
        let g = diamond();
        let z = swscc_graph::CompressedCsr::from_csr(&g);
        let raw = snapshot(&g);
        let pipeline = Pipeline::stock(Algorithm::Method2).unwrap();
        let guard = RunGuard::new();
        let (zs, _) =
            SccSnapshot::build(&z, &pipeline, &SccConfig::with_threads(2), &guard).unwrap();
        assert_eq!(
            raw.result().canonical_labels(),
            zs.result().canonical_labels()
        );
        assert_eq!(
            raw.condensation().num_nodes(),
            zs.condensation().num_nodes()
        );
    }
}
