//! Block partitioning of the node set across workers.

use swscc_graph::NodeId;

/// A contiguous block partition of `0..num_nodes` into `num_workers`
/// ranges of near-equal size.
///
/// # Examples
///
/// ```
/// use swscc_distributed::Partition;
///
/// let p = Partition::new(10, 3);
/// assert_eq!(p.owner(0), 0);
/// assert_eq!(p.owner(9), 2);
/// assert_eq!(p.range(0), 0..4); // 10 = 4 + 3 + 3
/// assert_eq!(p.range(2), 7..10);
/// ```
#[derive(Clone, Debug)]
pub struct Partition {
    num_nodes: usize,
    num_workers: usize,
    /// `starts[w]..starts[w+1]` is worker w's block.
    starts: Vec<usize>,
}

impl Partition {
    /// Creates a block partition. `num_workers` is clamped to at least 1;
    /// empty blocks are allowed when there are more workers than nodes.
    pub fn new(num_nodes: usize, num_workers: usize) -> Self {
        let num_workers = num_workers.max(1);
        let base = num_nodes / num_workers;
        let extra = num_nodes % num_workers;
        let mut starts = Vec::with_capacity(num_workers + 1);
        let mut s = 0;
        starts.push(0);
        for w in 0..num_workers {
            s += base + usize::from(w < extra);
            starts.push(s);
        }
        Partition {
            num_nodes,
            num_workers,
            starts,
        }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The worker owning `node`. O(log P).
    #[inline]
    pub fn owner(&self, node: NodeId) -> usize {
        debug_assert!((node as usize) < self.num_nodes);
        // partition_point: first index with start > node
        self.starts.partition_point(|&s| s <= node as usize) - 1
    }

    /// The node range owned by `worker`.
    pub fn range(&self, worker: usize) -> std::ops::Range<NodeId> {
        self.starts[worker] as NodeId..self.starts[worker + 1] as NodeId
    }

    /// Local index of `node` within its owner's block.
    #[inline]
    pub fn local_index(&self, node: NodeId) -> usize {
        node as usize - self.starts[self.owner(node)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_nodes_exactly_once() {
        for (n, p) in [(10usize, 3usize), (7, 7), (5, 8), (100, 1), (0, 4), (1, 1)] {
            let part = Partition::new(n, p);
            let mut count = 0;
            for w in 0..part.num_workers() {
                for node in part.range(w) {
                    assert_eq!(part.owner(node), w, "n={n} p={p} node={node}");
                    count += 1;
                }
            }
            assert_eq!(count, n, "n={n} p={p}");
        }
    }

    #[test]
    fn blocks_are_balanced() {
        let part = Partition::new(103, 4);
        let sizes: Vec<usize> = (0..4).map(|w| part.range(w).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().all(|&s| s == 25 || s == 26));
    }

    #[test]
    fn local_index() {
        let part = Partition::new(10, 3);
        assert_eq!(part.local_index(0), 0);
        assert_eq!(part.local_index(4), 0); // first node of worker 1
        assert_eq!(part.local_index(9), 2);
    }

    #[test]
    fn zero_workers_clamped() {
        let part = Partition::new(5, 0);
        assert_eq!(part.num_workers(), 1);
        assert_eq!(part.range(0), 0..5);
    }
}
