//! SNAP-style edge-list text I/O.
//!
//! The paper's datasets ship from SNAP / KONECT as whitespace-separated
//! `src dst` lines with `#`/`%` comment lines. This loader accepts that
//! format so the *real* LiveJournal/Twitter/etc. files can be dropped into
//! the benchmark harness when available (see `swscc-graph::datasets`); node
//! ids are compacted to a dense `0..n` range.

use crate::bfs::Direction;
use crate::builder::GraphBuilder;
use crate::compressed::CompressedCsr;
use crate::csr::{CsrGraph, NodeId};
use rustc_hash::FxHashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line that is not two integers.
    Parse { line_number: usize, line: String },
    /// A structurally corrupt binary file: bad magic, impossible declared
    /// counts, payload shorter or longer than the header promises,
    /// out-of-range edge endpoints, or a violated CSR invariant after
    /// assembly.
    Corrupt { detail: String },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::Parse { line_number, line } => {
                write!(f, "cannot parse line {line_number}: {line:?}")
            }
            LoadError::Corrupt { detail } => write!(f, "corrupt graph file: {detail}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Reads a SNAP-format directed edge list from any reader. Comment lines
/// start with `#` or `%`; blank lines are skipped; node ids are remapped to
/// a dense range in first-appearance order.
pub fn read_edge_list(reader: impl Read) -> Result<CsrGraph, LoadError> {
    let reader = BufReader::new(reader);
    let mut remap: FxHashMap<u64, NodeId> = FxHashMap::default();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let intern = |raw: u64, remap: &mut FxHashMap<u64, NodeId>| -> NodeId {
        let next = remap.len() as NodeId;
        *remap.entry(raw).or_insert(next)
    };
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse_err = || LoadError::Parse {
            line_number: idx + 1,
            line: line.clone(),
        };
        let u: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(parse_err)?;
        let v: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(parse_err)?;
        let u = intern(u, &mut remap);
        let v = intern(v, &mut remap);
        edges.push((u, v));
    }
    let mut b = GraphBuilder::with_capacity(remap.len(), edges.len());
    b.extend(edges);
    let g = b.build();
    // Defense-in-depth: loaders hand untrusted bytes to the whole
    // pipeline, so check the CSR invariants before anything traverses.
    g.validate().map_err(|e| LoadError::Corrupt {
        detail: e.to_string(),
    })?;
    Ok(g)
}

/// Loads a SNAP-format edge list from a file path.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<CsrGraph, LoadError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a graph as a SNAP-format edge list (with a header comment).
pub fn write_edge_list(g: &CsrGraph, writer: impl Write) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# Nodes: {} Edges: {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

/// Saves a graph to a file as a SNAP-format edge list.
pub fn save_edge_list(g: &CsrGraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

/// Magic header of the binary graph format.
const BINARY_MAGIC: &[u8; 8] = b"SWSCC01\0";

/// Writes a graph in the compact binary format: an 8-byte magic, node and
/// edge counts as little-endian `u64`, then the edge list as `u32` pairs.
/// Roughly 8 bytes/edge vs ~14 for the text format, and loading skips all
/// integer parsing — use it to cache large generated analogs between
/// harness runs.
pub fn write_binary(g: &CsrGraph, writer: impl Write) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(g.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for (u, v) in g.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// `read_exact` that reports truncation as [`LoadError::Corrupt`] with
/// context instead of a bare `UnexpectedEof`.
fn read_exact_or_corrupt(
    r: &mut impl Read,
    buf: &mut [u8],
    what: impl Fn() -> String,
) -> Result<(), LoadError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            LoadError::Corrupt {
                detail: format!("truncated file: {}", what()),
            }
        } else {
            LoadError::Io(e)
        }
    })
}

/// Reads a graph written by [`write_binary`].
///
/// The header is untrusted: declared node/edge counts are validated
/// against the `NodeId` range and the actual payload length (truncation
/// and trailing garbage are both [`LoadError::Corrupt`]), edge endpoints
/// are range-checked, memory is preallocated only up to a sane cap so an
/// absurd declared count cannot OOM before the payload runs out, and the
/// assembled graph passes [`CsrGraph::validate`] before it is returned.
pub fn read_binary(reader: impl Read) -> Result<CsrGraph, LoadError> {
    let corrupt = |detail: String| LoadError::Corrupt { detail };
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    read_exact_or_corrupt(&mut r, &mut magic, || "header magic".into())?;
    if &magic != BINARY_MAGIC {
        return Err(corrupt(format!("bad magic {magic:?}")));
    }
    let mut buf8 = [0u8; 8];
    read_exact_or_corrupt(&mut r, &mut buf8, || "node count".into())?;
    let n64 = u64::from_le_bytes(buf8);
    read_exact_or_corrupt(&mut r, &mut buf8, || "edge count".into())?;
    let m64 = u64::from_le_bytes(buf8);
    if n64 > NodeId::MAX as u64 {
        return Err(corrupt(format!(
            "declared node count {n64} exceeds the 32-bit id range"
        )));
    }
    let n = n64 as usize;
    let m = usize::try_from(m64).map_err(|_| {
        corrupt(format!(
            "declared edge count {m64} does not fit this platform"
        ))
    })?;
    // Preallocation guard: trust the declared count only up to ~8 MiB of
    // edges; a corrupt header claiming 2^60 edges then fails on the first
    // missing byte instead of aborting on an impossible allocation.
    const PREALLOC_CAP_EDGES: usize = 1 << 20;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(m.min(PREALLOC_CAP_EDGES));
    let mut pair = [0u8; 8];
    for i in 0..m {
        read_exact_or_corrupt(&mut r, &mut pair, || {
            format!("header declares {m} edges but the payload ends at edge {i}")
        })?;
        let u = u32::from_le_bytes(pair[0..4].try_into().expect("4 bytes"));
        let v = u32::from_le_bytes(pair[4..8].try_into().expect("4 bytes"));
        if u as usize >= n || v as usize >= n {
            return Err(corrupt(format!(
                "edge ({u}, {v}) out of range for {n} nodes"
            )));
        }
        edges.push((u, v));
    }
    // The payload must end exactly where the header says it does.
    let mut probe = [0u8; 1];
    match r.read(&mut probe) {
        Ok(0) => {}
        Ok(_) => {
            return Err(corrupt(format!(
                "trailing bytes after the declared {m} edges"
            )))
        }
        Err(e) => return Err(LoadError::Io(e)),
    }
    let g = CsrGraph::from_edges(n, &edges);
    g.validate().map_err(|e| corrupt(e.to_string()))?;
    Ok(g)
}

/// Saves a graph to a file in the binary format.
pub fn save_binary(g: &CsrGraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Loads a graph from a binary-format file.
pub fn load_binary(path: impl AsRef<Path>) -> Result<CsrGraph, LoadError> {
    read_binary(std::fs::File::open(path)?)
}

// ---------------------------------------------------------------------------
// Compressed binary format
// ---------------------------------------------------------------------------

/// Magic header of the compressed binary graph format.
const COMPRESSED_MAGIC: &[u8; 8] = b"SWSCCZ1\0";

/// Writes a [`CompressedCsr`] verbatim: the 8-byte magic, node and edge
/// counts as little-endian `u64`, then for each direction (out, then in)
/// the `u32` byte-offset array prefixed by its length and the encoded
/// adjacency stream prefixed by its byte length. The payload is the
/// in-memory representation, so a load costs one validation pass and no
/// re-encoding — the natural cache format for corpora that only fit in
/// RAM compressed.
pub fn write_compressed(z: &CompressedCsr, writer: impl Write) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(COMPRESSED_MAGIC)?;
    w.write_all(&(z.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(z.num_edges() as u64).to_le_bytes())?;
    for dir in [Direction::Forward, Direction::Backward] {
        let (offsets, data) = z.raw_parts(dir);
        w.write_all(&(offsets.len() as u64).to_le_bytes())?;
        for &o in offsets {
            w.write_all(&o.to_le_bytes())?;
        }
        w.write_all(&(data.len() as u64).to_le_bytes())?;
        w.write_all(data)?;
    }
    w.flush()
}

/// Reads a graph written by [`write_compressed`].
///
/// The header is untrusted, with the same posture as [`read_binary`]:
/// declared lengths are checked against the `NodeId` range and each
/// other, preallocation is capped so an absurd header fails on missing
/// payload instead of an impossible allocation, the payload must end
/// exactly where the header says, and the assembled parts pass the full
/// [`CompressedCsr::from_raw_parts`] validation (offset shape, stream
/// decode, target ranges, forward/backward degree agreement) before the
/// graph is returned.
pub fn read_compressed(reader: impl Read) -> Result<CompressedCsr, LoadError> {
    let corrupt = |detail: String| LoadError::Corrupt { detail };
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    read_exact_or_corrupt(&mut r, &mut magic, || "header magic".into())?;
    if &magic != COMPRESSED_MAGIC {
        return Err(corrupt(format!("bad magic {magic:?}")));
    }
    let mut buf8 = [0u8; 8];
    read_exact_or_corrupt(&mut r, &mut buf8, || "node count".into())?;
    let n64 = u64::from_le_bytes(buf8);
    read_exact_or_corrupt(&mut r, &mut buf8, || "edge count".into())?;
    let m64 = u64::from_le_bytes(buf8);
    if n64 > NodeId::MAX as u64 {
        return Err(corrupt(format!(
            "declared node count {n64} exceeds the 32-bit id range"
        )));
    }
    let n = n64 as usize;
    // Preallocation guard, as in `read_binary`: trust declared lengths
    // only up to a few MiB; a lying header then dies on truncation.
    const PREALLOC_CAP: usize = 1 << 20;
    let mut read_direction = |what: &str| -> Result<(Vec<u32>, Vec<u8>), LoadError> {
        let mut buf8 = [0u8; 8];
        read_exact_or_corrupt(&mut r, &mut buf8, || format!("{what} offsets length"))?;
        let olen64 = u64::from_le_bytes(buf8);
        if olen64 != n as u64 + 1 {
            return Err(corrupt(format!(
                "{what} offsets length {olen64} disagrees with {n} nodes"
            )));
        }
        let olen = olen64 as usize;
        let mut offsets: Vec<u32> = Vec::with_capacity(olen.min(PREALLOC_CAP));
        let mut b4 = [0u8; 4];
        for i in 0..olen {
            read_exact_or_corrupt(&mut r, &mut b4, || {
                format!("{what} offsets end at entry {i} of {olen}")
            })?;
            offsets.push(u32::from_le_bytes(b4));
        }
        read_exact_or_corrupt(&mut r, &mut buf8, || format!("{what} data length"))?;
        let dlen64 = u64::from_le_bytes(buf8);
        if dlen64 > u32::MAX as u64 {
            return Err(corrupt(format!(
                "{what} data length {dlen64} exceeds the u32 offset range"
            )));
        }
        let dlen = dlen64 as usize;
        let mut data: Vec<u8> = vec![0u8; dlen.min(PREALLOC_CAP)];
        let mut filled = 0usize;
        while filled < dlen {
            if filled == data.len() {
                data.resize(dlen.min(data.len() * 2), 0);
            }
            let end = data.len();
            read_exact_or_corrupt(&mut r, &mut data[filled..end], || {
                format!("{what} data ends before byte {dlen}")
            })?;
            filled = end;
        }
        Ok((offsets, data))
    };
    let (out_offsets, out_data) = read_direction("forward")?;
    let (in_offsets, in_data) = read_direction("backward")?;
    // The payload must end exactly where the header says it does.
    let mut probe = [0u8; 1];
    match r.read(&mut probe) {
        Ok(0) => {}
        Ok(_) => return Err(corrupt("trailing bytes after the declared payload".into())),
        Err(e) => return Err(LoadError::Io(e)),
    }
    let z = CompressedCsr::from_raw_parts(n, out_offsets, out_data, in_offsets, in_data)
        .map_err(|e| corrupt(e.to_string()))?;
    if z.num_edges() as u64 != m64 {
        return Err(corrupt(format!(
            "header declares {m64} edges but the streams decode to {}",
            z.num_edges()
        )));
    }
    Ok(z)
}

/// Saves a compressed graph to a file.
pub fn save_compressed(z: &CompressedCsr, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_compressed(z, std::fs::File::create(path)?)
}

/// Loads a compressed graph from a file.
pub fn load_compressed(path: impl AsRef<Path>) -> Result<CompressedCsr, LoadError> {
    read_compressed(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format() {
        let text = "# comment\n% other comment\n\n0 1\n1\t2\n2  0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn remaps_sparse_ids() {
        let text = "1000000 5\n5 99\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3); // 1000000->0, 5->1, 99->2
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn rejects_garbage() {
        let text = "0 1\nfoo bar\n";
        match read_edge_list(text.as_bytes()) {
            Err(LoadError::Parse { line_number, .. }) => assert_eq!(line_number, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_one_column() {
        let text = "42\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn round_trip() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 1)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        // ids are remapped in first-appearance order, which here preserves
        // the original ids because edges() emits sources in ascending order
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = g2.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("swscc_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g2.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn binary_round_trip() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (4, 4), (3, 1)]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g2.num_nodes(), 5);
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = g2.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn binary_preserves_isolated_nodes() {
        // Unlike the text loader (which only sees nodes appearing in
        // edges), the binary format stores the node count explicitly.
        let g = CsrGraph::from_edges(10, &[(0, 1)]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap().num_nodes(), 10);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTMAGIC\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0".to_vec();
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn binary_rejects_truncated() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_edge() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SWSCC01\0");
        buf.extend_from_slice(&2u64.to_le_bytes()); // 2 nodes
        buf.extend_from_slice(&1u64.to_le_bytes()); // 1 edge
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes()); // target out of range
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn binary_rejects_trailing_bytes() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.push(0xAB);
        match read_binary(buf.as_slice()) {
            Err(LoadError::Corrupt { detail }) => assert!(detail.contains("trailing")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_absurd_edge_count_without_oom() {
        // Header claims 2^60 edges with an empty payload: must fail fast
        // on the missing bytes, not preallocate.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SWSCC01\0");
        buf.extend_from_slice(&4u64.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 60).to_le_bytes());
        match read_binary(buf.as_slice()) {
            Err(LoadError::Corrupt { detail }) => {
                assert!(detail.contains("payload ends at edge 0"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_node_count_beyond_id_range() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SWSCC01\0");
        buf.extend_from_slice(&(u64::MAX).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        match read_binary(buf.as_slice()) {
            Err(LoadError::Corrupt { detail }) => assert!(detail.contains("32-bit")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn binary_truncated_header_reports_context() {
        let buf = b"SWSCC01\0\x05\x00".to_vec(); // magic + 2 bytes of n
        match read_binary(buf.as_slice()) {
            Err(LoadError::Corrupt { detail }) => assert!(detail.contains("node count")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn compressed_round_trip() {
        use crate::view::GraphView;
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (4, 4), (3, 1), (5, 0)]);
        let z = CompressedCsr::from_csr(&g);
        let mut buf = Vec::new();
        write_compressed(&z, &mut buf).unwrap();
        let z2 = read_compressed(buf.as_slice()).unwrap();
        assert_eq!(z2.num_nodes(), 6);
        assert_eq!(z2.num_edges(), g.num_edges());
        let m = z2.materialize_csr();
        for v in g.nodes() {
            assert_eq!(m.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(m.in_neighbors(v), g.in_neighbors(v));
        }
    }

    #[test]
    fn compressed_rejects_bad_magic() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let mut buf = Vec::new();
        write_compressed(&CompressedCsr::from_csr(&g), &mut buf).unwrap();
        buf[6] = b'9';
        assert!(read_compressed(buf.as_slice()).is_err());
    }

    #[test]
    fn compressed_rejects_truncated() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut buf = Vec::new();
        write_compressed(&CompressedCsr::from_csr(&g), &mut buf).unwrap();
        for cut in [buf.len() - 1, buf.len() / 2, 10] {
            let mut t = buf.clone();
            t.truncate(cut);
            assert!(read_compressed(t.as_slice()).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn compressed_rejects_trailing_bytes() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_compressed(&CompressedCsr::from_csr(&g), &mut buf).unwrap();
        buf.push(0xCD);
        match read_compressed(buf.as_slice()) {
            Err(LoadError::Corrupt { detail }) => assert!(detail.contains("trailing")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn compressed_rejects_corrupted_stream() {
        // Flip a payload byte: either the decode validation or the
        // cross-direction degree check must catch it.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)]);
        let mut buf = Vec::new();
        write_compressed(&CompressedCsr::from_csr(&g), &mut buf).unwrap();
        let payload_start = buf.len() - 4;
        buf[payload_start] ^= 0x3F;
        assert!(read_compressed(buf.as_slice()).is_err());
    }

    #[test]
    fn compressed_rejects_absurd_lengths_without_oom() {
        // Header claims n = 2^31 nodes with an empty payload: must fail on
        // the missing offset bytes, not preallocate 8 GiB.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SWSCCZ1\0");
        buf.extend_from_slice(&(1u64 << 31).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&((1u64 << 31) + 1).to_le_bytes());
        match read_compressed(buf.as_slice()) {
            Err(LoadError::Corrupt { detail }) => {
                assert!(detail.contains("offsets end at entry"), "{detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn compressed_rejects_edge_count_mismatch() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut buf = Vec::new();
        write_compressed(&CompressedCsr::from_csr(&g), &mut buf).unwrap();
        buf[16..24].copy_from_slice(&99u64.to_le_bytes());
        match read_compressed(buf.as_slice()) {
            Err(LoadError::Corrupt { detail }) => assert!(detail.contains("decode to"), "{detail}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn compressed_file_round_trip() {
        let dir = std::env::temp_dir().join("swscc_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.zcsr");
        let g = crate::gen::rmat(&crate::gen::RmatConfig::graph500(8, 8, 17));
        let z = CompressedCsr::from_csr(&g);
        save_compressed(&z, &path).unwrap();
        let z2 = load_compressed(&path).unwrap();
        assert_eq!(z2.num_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_file_round_trip() {
        let dir = std::env::temp_dir().join("swscc_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3), (3, 2)]);
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_eq!(g2.num_edges(), 3);
        assert!(g2.has_edge(3, 2));
        std::fs::remove_file(&path).ok();
    }
}
