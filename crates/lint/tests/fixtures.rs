//! Fixture self-test: every file under `crates/lint/fixtures/` carries
//! `//~ <rule>` markers on the exact lines its known-bad cases must
//! fire, plus unmarked negative cases (evasions, justified sites, test
//! regions) that must stay silent. The corpus runs through the real
//! engine with the real default [`Config`] — fixture virtual paths
//! (the `//@ path:` first line) place each file where the path policy
//! expects it — and the test asserts the finding multiset equals the
//! marker multiset exactly: a missed marker and a stray finding are
//! both failures.
//!
//! Two rules need purpose-built mini-workspaces instead of markers
//! (their findings carry line 0): the atomic inventory and the
//! missing-STOCK-table probe. A final test runs the engine over the
//! real tree and asserts it is clean modulo the checked-in baseline.

use std::path::{Path, PathBuf};

use swscc_lint::baseline::Baseline;
use swscc_lint::engine::{self, Config, Workspace};
use swscc_lint::source::SourceFile;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// (virtual path, 1-based line, rule) — one entry per marker occurrence.
type Expectation = (String, usize, String);

struct Fixture {
    virtual_path: String,
    text: String,
    expected: Vec<Expectation>,
}

fn load_fixture(path: &Path) -> Fixture {
    let text = std::fs::read_to_string(path).unwrap();
    let first = text.lines().next().unwrap_or("");
    let virtual_path = first
        .strip_prefix("//@ path: ")
        .unwrap_or_else(|| panic!("{}: first line must be `//@ path: <rel>`", path.display()))
        .trim()
        .to_string();
    let mut expected = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("//~") {
            rest = &rest[at + 3..];
            let rule: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || *c == '-')
                .collect();
            assert!(
                !rule.is_empty(),
                "{}:{}: `//~` marker without a rule name",
                path.display(),
                i + 1
            );
            expected.push((virtual_path.clone(), i + 1, rule));
        }
    }
    Fixture {
        virtual_path,
        text,
        expected,
    }
}

fn load_corpus() -> (Vec<SourceFile>, Vec<Expectation>) {
    let mut files = Vec::new();
    let mut expected = Vec::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    for path in paths {
        let fx = load_fixture(&path);
        files.push(SourceFile::parse(&fx.virtual_path, fx.text));
        expected.extend(fx.expected);
    }
    (files, expected)
}

/// The corpus config: the real default path policy, with the inventory
/// rule neutralized (its findings carry no line and get their own test
/// below — an empty extraction diffed against an empty documented block
/// reports nothing).
fn corpus_config() -> Config {
    Config {
        inventory_exempt: vec![String::new()],
        design_inventory: Some(String::new()),
        ..Config::default()
    }
}

#[test]
fn fixtures_fire_exactly_where_marked() {
    let (files, mut expected) = load_corpus();
    assert!(
        files.len() >= 10,
        "fixture corpus shrank to {}",
        files.len()
    );
    assert!(
        expected.len() >= 12,
        "fixture corpus must keep >= 12 known-bad cases, found {}",
        expected.len()
    );

    let ws = Workspace::from_files(files, corpus_config());
    let report = engine::run(&ws, None, &Baseline::empty());
    let mut actual: Vec<Expectation> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.to_string()))
        .collect();
    expected.sort();
    actual.sort();

    let missed: Vec<_> = expected
        .iter()
        .filter(|e| !remove_one(&mut actual.clone(), e))
        .collect();
    assert_eq!(
        actual, expected,
        "finding multiset != marker multiset\n  markers missed: {missed:?}\n  all findings: {:#?}",
        report.findings
    );
}

/// Multiset helper for the diagnostic message only.
fn remove_one(v: &mut Vec<Expectation>, e: &Expectation) -> bool {
    if let Some(i) = v.iter().position(|x| x == e) {
        v.remove(i);
        true
    } else {
        false
    }
}

#[test]
fn per_rule_filter_reproduces_the_marker_subset() {
    // `--rule graphview` over the corpus must fire exactly the graphview
    // markers — the filter must not leak other rules' findings.
    let (files, expected) = load_corpus();
    let ws = Workspace::from_files(files, corpus_config());
    let report = engine::run(&ws, Some("graphview"), &Baseline::empty());
    let mut want: Vec<Expectation> = expected
        .into_iter()
        .filter(|(_, _, r)| r == "graphview")
        .collect();
    let mut got: Vec<Expectation> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.to_string()))
        .collect();
    want.sort();
    got.sort();
    assert_eq!(got, want);
    assert!(!got.is_empty(), "corpus lost its graphview cases");
}

#[test]
fn inventory_rule_strong_orderings_and_drift() {
    let src = "use swscc_sync::atomic::{AtomicU32, Ordering};\n\
               pub fn f(x: &AtomicU32) {\n    x.store(1, Ordering::SeqCst);\n}\n";
    let file = SourceFile::parse("crates/core/src/state.rs", src.to_string());

    // No documented block at all → one strong-ordering finding plus the
    // missing-block finding.
    let cfg = Config {
        design_inventory: None,
        ..Config::default()
    };
    let ws = Workspace::from_files(
        vec![SourceFile::parse(
            "crates/core/src/state.rs",
            src.to_string(),
        )],
        cfg,
    );
    let report = engine::run(&ws, Some("inventory"), &Baseline::empty());
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(report.findings.len(), 2, "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("Ordering::SeqCst")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("no generated atomic-inventory block")),
        "{msgs:?}"
    );

    // An up-to-date block → only the strong-ordering violation remains.
    let cfg = Config {
        design_inventory: Some(
            "crates/core/src/state.rs: atomics=AtomicU32 orderings=SeqCst\n".to_string(),
        ),
        ..Config::default()
    };
    let ws = Workspace::from_files(
        vec![SourceFile::parse(
            "crates/core/src/state.rs",
            src.to_string(),
        )],
        cfg,
    );
    let report = engine::run(&ws, Some("inventory"), &Baseline::empty());
    assert_eq!(report.findings.len(), 1);
    assert!(report.findings[0].message.contains("Ordering::SeqCst"));

    // A drifted block → one "code has" and one "documents" finding on top.
    let cfg = Config {
        design_inventory: Some(
            "crates/core/src/gone.rs: atomics=AtomicBool orderings=Relaxed\n".to_string(),
        ),
        ..Config::default()
    };
    let ws = Workspace::from_files(vec![file], cfg);
    let report = engine::run(&ws, Some("inventory"), &Baseline::empty());
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(report.findings.len(), 3, "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("but DESIGN.md §8 doesn't")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("no longer matches")),
        "{msgs:?}"
    );

    // Strong orderings are allowed in the work-queue file.
    let cfg = Config {
        design_inventory: Some(
            "crates/parallel/src/workqueue.rs: atomics=AtomicU32 orderings=SeqCst\n".to_string(),
        ),
        ..Config::default()
    };
    let ws = Workspace::from_files(
        vec![SourceFile::parse(
            "crates/parallel/src/workqueue.rs",
            src.to_string(),
        )],
        cfg,
    );
    let report = engine::run(&ws, Some("inventory"), &Baseline::empty());
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn pipeline_rule_reports_a_missing_stock_table() {
    let cfg = Config {
        design_inventory: Some(String::new()),
        ..Config::default()
    };
    let file = SourceFile::parse(
        &cfg.pipeline_file.clone(),
        "pub fn renamed_the_table() {}\n".to_string(),
    );
    let ws = Workspace::from_files(vec![file], cfg);
    let report = engine::run(&ws, Some("pipeline"), &Baseline::empty());
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert!(report.findings[0].message.contains("STOCK"));
}

#[test]
fn real_tree_is_clean_modulo_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let ws = Workspace::load(&root, Config::default());
    assert!(
        ws.files.len() > 100,
        "workspace walk found {} files",
        ws.files.len()
    );
    let baseline = std::fs::read_to_string(root.join(swscc_lint::BASELINE_PATH))
        .map(|t| Baseline::parse(&t))
        .unwrap_or_else(|_| Baseline::empty());
    let report = engine::run(&ws, None, &baseline);
    assert!(
        report.findings.is_empty(),
        "the real tree must lint clean modulo the baseline:\n{:#?}",
        report.findings
    );
}
